module Task = Dssoc_runtime.Task
module Scheduler = Dssoc_runtime.Scheduler
module Exec_model = Dssoc_runtime.Exec_model
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Config = Dssoc_soc.Config
module Pe = Dssoc_soc.Pe
module App_spec = Dssoc_apps.App_spec
module Store = Dssoc_apps.Store
module Reference_apps = Dssoc_apps.Reference_apps
module Workload = Dssoc_apps.Workload
module Prng = Dssoc_util.Prng

let qtest = QCheck_alcotest.to_alcotest

let det_engine = Emulator.virtual_seeded ~jitter:0.0 1L

let cfg_3c2f () = Config.zcu102_cores_ffts ~cores:3 ~ffts:2

(* ---------------------- Task ---------------------- *)

let test_instantiate () =
  let spec = Reference_apps.range_detection () in
  let inst = Task.instantiate ~task_id_base:100 ~inst_id:7 ~arrival_ns:55 spec in
  Alcotest.(check int) "task count" 6 (Array.length inst.Task.tasks);
  Alcotest.(check int) "remaining" 6 inst.Task.remaining;
  Alcotest.(check int) "arrival" 55 inst.Task.arrival_ns;
  Alcotest.(check int) "id base" 100 inst.Task.tasks.(0).Task.id;
  Alcotest.(check int) "entry nodes (LFM, FFT_0)" 2 (List.length inst.Task.entry);
  let max_t = inst.Task.tasks.(5) in
  Alcotest.(check string) "last node" "MAX" max_t.Task.node.App_spec.node_name;
  Alcotest.(check int) "MAX waits on IFFT" 1 max_t.Task.unmet;
  (* successors resolved to task records *)
  let lfm = inst.Task.tasks.(0) in
  Alcotest.(check (list string)) "LFM successors" [ "FFT_1" ]
    (List.map (fun t -> t.Task.node.App_spec.node_name) lfm.Task.successors)

let test_supports_generic_cpu () =
  let spec = Reference_apps.range_detection () in
  let inst = Task.instantiate ~task_id_base:0 ~inst_id:0 ~arrival_ns:0 spec in
  let lfm = inst.Task.tasks.(0) in
  let fft0 = inst.Task.tasks.(1) in
  let cpu_pe = Pe.make ~id:0 ~kind:(Pe.Cpu Pe.a53) in
  let big_pe = Pe.make ~id:1 ~kind:(Pe.Cpu Pe.a15_big) in
  let fft_pe = Pe.make ~id:2 ~kind:(Pe.Accel Pe.zynq_fft) in
  Alcotest.(check bool) "cpu entry matches a53" true (Task.supports lfm cpu_pe);
  Alcotest.(check bool) "cpu entry matches big (portability)" true (Task.supports lfm big_pe);
  Alcotest.(check bool) "LFM does not run on fft" false (Task.supports lfm fft_pe);
  Alcotest.(check bool) "FFT_0 runs on fft accel" true (Task.supports fft0 fft_pe)

(* ---------------------- Scheduler ---------------------- *)

let mk_ctx ?(now = 0) ready pes =
  {
    Scheduler.now;
    ready = Array.of_list ready;
    nready = List.length ready;
    pes;
    estimate = (fun t i -> Exec_model.estimate_ns t pes.(i).Scheduler.pe);
    prng = Prng.create ~seed:1L;
    ops = 0;
  }

let rd_tasks () =
  let spec = Reference_apps.range_detection () in
  let inst = Task.instantiate ~task_id_base:0 ~inst_id:0 ~arrival_ns:0 spec in
  inst.Task.tasks

let pe_states kinds =
  Array.of_list
    (List.mapi
       (fun i kind ->
         { Scheduler.pe = Pe.make ~id:i ~kind; idle = true; busy_until = 0; available = true })
       kinds)

let test_frfs_order () =
  let tasks = rd_tasks () in
  let lfm = tasks.(0) and fft0 = tasks.(1) in
  let pes = pe_states [ Pe.Cpu Pe.a53; Pe.Cpu Pe.a53 ] in
  let ctx = mk_ctx [ lfm; fft0 ] pes in
  let assignments = Scheduler.frfs.Scheduler.schedule ctx in
  Alcotest.(check int) "both assigned" 2 (List.length assignments);
  let first = List.hd assignments in
  Alcotest.(check string) "first ready first" "LFM" first.Scheduler.task.Task.node.App_spec.node_name;
  Alcotest.(check int) "to first idle PE" 0 first.Scheduler.pe_index

let test_frfs_skips_unsupported () =
  let tasks = rd_tasks () in
  let lfm = tasks.(0) in
  (* only an FFT accelerator available: LFM (cpu-only) cannot run *)
  let pes = pe_states [ Pe.Accel Pe.zynq_fft ] in
  let assignments = Scheduler.frfs.Scheduler.schedule (mk_ctx [ lfm ] pes) in
  Alcotest.(check int) "nothing assigned" 0 (List.length assignments)

let test_met_picks_min_exec () =
  let tasks = rd_tasks () in
  let fft0 = tasks.(1) in
  (* FFT-512 is faster on the accelerator than on the A53. *)
  let pes = pe_states [ Pe.Cpu Pe.a53; Pe.Accel Pe.zynq_fft ] in
  let assignments = Scheduler.met.Scheduler.schedule (mk_ctx [ fft0 ] pes) in
  Alcotest.(check int) "assigned" 1 (List.length assignments);
  Alcotest.(check int) "accelerator chosen" 1 (List.hd assignments).Scheduler.pe_index

let test_eft_waits_for_busy_favorite () =
  let tasks = rd_tasks () in
  let fft0 = tasks.(1) in
  (* Accelerator busy but about to free; CPU idle but much slower: EFT
     leaves the task waiting for the accelerator. *)
  let pes = pe_states [ Pe.Cpu Pe.a53; Pe.Accel Pe.zynq_fft ] in
  pes.(1).Scheduler.idle <- false;
  pes.(1).Scheduler.busy_until <- 1_000;
  let assignments = Scheduler.eft.Scheduler.schedule (mk_ctx [ fft0 ] pes) in
  Alcotest.(check int) "task waits" 0 (List.length assignments)

let test_eft_uses_idle_when_better () =
  let tasks = rd_tasks () in
  let fft0 = tasks.(1) in
  let pes = pe_states [ Pe.Cpu Pe.a53; Pe.Accel Pe.zynq_fft ] in
  pes.(1).Scheduler.idle <- false;
  (* Accelerator will be busy for a long time: CPU finishes earlier. *)
  pes.(1).Scheduler.busy_until <- 100_000_000;
  let assignments = Scheduler.eft.Scheduler.schedule (mk_ctx [ fft0 ] pes) in
  Alcotest.(check int) "assigned to cpu" 1 (List.length assignments);
  Alcotest.(check int) "cpu index" 0 (List.hd assignments).Scheduler.pe_index

let test_random_deterministic_with_seed () =
  let tasks = rd_tasks () in
  let lfm = tasks.(0) in
  let run () =
    let pes = pe_states [ Pe.Cpu Pe.a53; Pe.Cpu Pe.a53; Pe.Cpu Pe.a53 ] in
    let ctx = mk_ctx [ lfm ] pes in
    (List.hd (Scheduler.random.Scheduler.schedule ctx)).Scheduler.pe_index
  in
  Alcotest.(check int) "same seed same choice" (run ()) (run ())

let test_registry () =
  Alcotest.(check bool) "frfs found" true (Result.is_ok (Scheduler.find "frfs"));
  Alcotest.(check bool) "case-insensitive" true (Result.is_ok (Scheduler.find "Eft"));
  Alcotest.(check bool) "unknown" true (Result.is_error (Scheduler.find "heft2000"));
  Scheduler.register { Scheduler.name = "CUSTOM_TEST"; schedule = (fun _ -> []) };
  Alcotest.(check bool) "custom registered" true (Result.is_ok (Scheduler.find "custom_test"))

let test_overhead_model () =
  let frfs5 = Scheduler.overhead_ns ~policy_name:"FRFS" ~ready:100 ~pes:5 ~ops:0 in
  Alcotest.(check int) "FRFS @5 PEs = 2.5us" 2_500 frfs5;
  let met = Scheduler.overhead_ns ~policy_name:"MET" ~ready:100 ~pes:5 ~ops:0 in
  let eft = Scheduler.overhead_ns ~policy_name:"EFT" ~ready:100 ~pes:5 ~ops:0 in
  Alcotest.(check bool) "EFT > MET > FRFS" true (eft > met && met > frfs5);
  (* capped beyond the examined window *)
  let eft_capped = Scheduler.overhead_ns ~policy_name:"EFT" ~ready:100_000 ~pes:5 ~ops:0 in
  let eft_at_cap = Scheduler.overhead_ns ~policy_name:"EFT" ~ready:256 ~pes:5 ~ops:0 in
  Alcotest.(check int) "window cap" eft_at_cap eft_capped

(* ---------------------- Exec model ---------------------- *)

let test_estimate_scales_with_core () =
  let tasks = rd_tasks () in
  let fft0 = tasks.(1) in
  let a53 = Exec_model.estimate_ns fft0 (Pe.make ~id:0 ~kind:(Pe.Cpu Pe.a53)) in
  let big = Exec_model.estimate_ns fft0 (Pe.make ~id:1 ~kind:(Pe.Cpu Pe.a15_big)) in
  Alcotest.(check bool) "big faster" true (big < a53)

let test_estimate_unsupported () =
  let tasks = rd_tasks () in
  let lfm = tasks.(0) in
  Alcotest.(check bool) "unsupported raises" true
    (try
       ignore (Exec_model.estimate_ns lfm (Pe.make ~id:0 ~kind:(Pe.Accel Pe.zynq_fft)));
       false
     with Invalid_argument _ -> true)

(* The dense per-run table the engines precompute must agree with a
   fresh cost-model recomputation for every supported (task, PE) pair
   of every reference app — the schedulers' decisions ride on it. *)
let test_estimate_table_matches_recomputation () =
  let pes =
    [|
      Pe.make ~id:0 ~kind:(Pe.Cpu Pe.a53);
      Pe.make ~id:1 ~kind:(Pe.Cpu Pe.a15_big);
      Pe.make ~id:2 ~kind:(Pe.Cpu Pe.a7_little);
      Pe.make ~id:3 ~kind:(Pe.Accel Pe.zynq_fft);
    |]
  in
  let base = ref 17 (* non-zero base: table indexing must handle it *) in
  let instances =
    Array.of_list
      (List.mapi
         (fun i spec ->
           let inst = Task.instantiate ~task_id_base:!base ~inst_id:i ~arrival_ns:0 spec in
           base := !base + Array.length inst.Task.tasks;
           inst)
         (Reference_apps.all ()))
  in
  let tbl = Exec_model.build_table ~instances ~pes in
  let checked = ref 0 in
  Array.iter
    (fun inst ->
      Array.iter
        (fun (t : Task.t) ->
          Array.iteri
            (fun i pe ->
              if Task.supports t pe then begin
                incr checked;
                Alcotest.(check int)
                  (Printf.sprintf "%s/%s on %s" t.Task.app_name
                     t.Task.node.App_spec.node_name pe.Pe.label)
                  (Exec_model.estimate_ns t pe)
                  (Exec_model.lookup tbl t i)
              end)
            pes)
        inst.Task.tasks)
    instances;
  Alcotest.(check bool) "covered many pairs" true (!checked > 1000)

(* ---------------------- Virtual engine integration ---------------------- *)

let run_validation ?(policy = "FRFS") ?(engine = det_engine) config apps =
  Emulator.run_exn ~engine ~policy ~config ~workload:(Workload.validation apps) ()

let test_rd_emulation_functional () =
  let spec = Reference_apps.range_detection () in
  let wl = Workload.validation [ (spec, 1) ] in
  match Emulator.run_detailed ~engine:det_engine ~config:(cfg_3c2f ()) ~workload:wl () with
  | Error msg -> Alcotest.fail msg
  | Ok (report, instances) ->
    Alcotest.(check int) "one instance" 1 (Array.length instances);
    let store = instances.(0).Task.store in
    Alcotest.(check int) "lag recovered through full emulation"
      Reference_apps.Truth.rd_echo_delay (Store.get_i32 store "lag");
    Alcotest.(check int) "all records present" 6 (List.length report.Stats.records);
    Alcotest.(check int) "task count" 6 report.Stats.task_count

let test_wifi_rx_emulation_functional () =
  let spec = Reference_apps.wifi_rx () in
  let wl = Workload.validation [ (spec, 2) ] in
  match Emulator.run_detailed ~engine:det_engine ~config:(cfg_3c2f ()) ~workload:wl () with
  | Error msg -> Alcotest.fail msg
  | Ok (_, instances) ->
    Array.iter
      (fun inst ->
        Alcotest.(check int) "crc ok" 1 (Store.get_i32 inst.Task.store "crc_ok");
        Alcotest.(check bool) "payload" true
          (Array.sub (Store.get_bits inst.Task.store "payload_out") 0 64
          = Reference_apps.Truth.wifi_payload))
      instances

let test_determinism_same_seed () =
  let spec = Reference_apps.wifi_rx () in
  let r1 = run_validation (cfg_3c2f ()) [ (spec, 3) ] in
  let r2 = run_validation (cfg_3c2f ()) [ (spec, 3) ] in
  Alcotest.(check int) "same makespan" r1.Stats.makespan_ns r2.Stats.makespan_ns;
  Alcotest.(check bool) "same records" true (r1.Stats.records = r2.Stats.records)

let test_jitter_produces_variance () =
  let spec = Reference_apps.range_detection () in
  let r1 = run_validation ~engine:(Emulator.virtual_seeded ~jitter:0.05 1L) (cfg_3c2f ()) [ (spec, 1) ] in
  let r2 = run_validation ~engine:(Emulator.virtual_seeded ~jitter:0.05 2L) (cfg_3c2f ()) [ (spec, 1) ] in
  Alcotest.(check bool) "different seeds differ" true (r1.Stats.makespan_ns <> r2.Stats.makespan_ns)

let test_unsupported_task_rejected () =
  (* A config with zero CPU PEs cannot run cpu-only nodes. *)
  let config = Config.make_exn ~host:Dssoc_soc.Host.zcu102 ~requests:[ { Config.kind = Pe.Accel Pe.zynq_fft; count = 1 } ] in
  let spec = Reference_apps.range_detection () in
  match Emulator.run ~engine:det_engine ~config ~workload:(Workload.validation [ (spec, 1) ]) () with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg -> Alcotest.(check bool) "mentions support" true (String.length msg > 0)

let test_unknown_policy_rejected () =
  let spec = Reference_apps.range_detection () in
  match
    Emulator.run ~engine:det_engine ~policy:"NOPE" ~config:(cfg_3c2f ())
      ~workload:(Workload.validation [ (spec, 1) ]) ()
  with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_report_invariants () =
  let mix = List.map (fun a -> (a, 1)) (Reference_apps.all ()) in
  let r = run_validation (cfg_3c2f ()) mix in
  Alcotest.(check int) "jobs" 4 r.Stats.job_count;
  Alcotest.(check int) "tasks" (770 + 6 + 7 + 9) r.Stats.task_count;
  Alcotest.(check int) "records complete" r.Stats.task_count (List.length r.Stats.records);
  (* all dispatch/complete stamps ordered *)
  List.iter
    (fun (t : Stats.task_record) ->
      Alcotest.(check bool) "ready <= dispatched" true (t.Stats.ready_ns <= t.Stats.dispatched_ns);
      Alcotest.(check bool) "dispatched < completed" true (t.Stats.dispatched_ns < t.Stats.completed_ns);
      Alcotest.(check bool) "completed <= makespan" true (t.Stats.completed_ns <= r.Stats.makespan_ns))
    r.Stats.records;
  (* busy time within makespan per PE *)
  List.iter
    (fun u -> Alcotest.(check bool) "util <= 1" true (u.Stats.busy_ns <= r.Stats.makespan_ns))
    r.Stats.pe_usage;
  Alcotest.(check bool) "scheduler ran" true (r.Stats.sched_invocations > 0);
  Alcotest.(check bool) "overhead positive" true (r.Stats.wm_overhead_ns > 0)

let test_predecessors_complete_first () =
  let r = run_validation (cfg_3c2f ()) [ (Reference_apps.wifi_tx (), 1) ] in
  (* wifi_tx is a linear chain: completion order must follow it. *)
  let order = List.map (fun (t : Stats.task_record) -> t.Stats.node) r.Stats.records in
  Alcotest.(check (list string)) "chain order"
    [ "CRC"; "SCRAMBLE"; "ENCODE"; "INTERLEAVE"; "MODULATE"; "PILOT"; "IFFT" ]
    order

let test_more_cores_faster () =
  let mix = List.map (fun a -> (a, 1)) (Reference_apps.all ()) in
  let m cores = (run_validation (Config.zcu102_cores_ffts ~cores ~ffts:0) mix).Stats.makespan_ns in
  let m1 = m 1 and m2 = m 2 and m3 = m 3 in
  Alcotest.(check bool) "2 cores beat 1" true (m2 < m1);
  Alcotest.(check bool) "3 cores beat 2" true (m3 < m2)

let test_2c2f_plateau () =
  (* Fig. 9: adding the second FFT to 2Core+1FFT is nearly free because
     both manager threads share one host core. *)
  let mix = List.map (fun a -> (a, 1)) (Reference_apps.all ()) in
  let m ffts = (run_validation (Config.zcu102_cores_ffts ~cores:2 ~ffts) mix).Stats.makespan_ns in
  let m1 = m 1 and m2 = m 2 in
  let gain = float_of_int (m1 - m2) /. float_of_int m1 in
  Alcotest.(check bool) "second FFT gains < 5%" true (gain < 0.05)

let test_policies_complete_workload () =
  let mix = List.map (fun a -> (a, 1)) (Reference_apps.all ()) in
  List.iter
    (fun policy ->
      let r = run_validation ~policy (cfg_3c2f ()) mix in
      Alcotest.(check int) (policy ^ " completes") (770 + 6 + 7 + 9) (List.length r.Stats.records))
    [ "FRFS"; "MET"; "EFT"; "RANDOM" ]

let test_performance_mode_run () =
  let wl = Workload.table2_workload ~rate:1.71 () in
  let r = Emulator.run_exn ~engine:det_engine ~config:(cfg_3c2f ()) ~workload:wl () in
  Alcotest.(check int) "jobs" 171 r.Stats.job_count;
  (* system keeps up at the lowest rate: makespan close to the window *)
  Alcotest.(check bool) "makespan near window" true
    (r.Stats.makespan_ns >= 99_000_000 && r.Stats.makespan_ns < 110_000_000)

let test_odroid_runs_same_apps () =
  (* Case Study 3 portability: identical JSON apps run on big.LITTLE. *)
  let config = Config.odroid_big_little ~big:2 ~little:1 in
  let r = run_validation config [ (Reference_apps.wifi_rx (), 1) ] in
  Alcotest.(check int) "completes" 9 (List.length r.Stats.records)

let test_utilization_bounds () =
  let mix = List.map (fun a -> (a, 1)) (Reference_apps.all ()) in
  let r = run_validation (Config.zcu102_cores_ffts ~cores:1 ~ffts:0) mix in
  List.iter
    (fun (_, u) -> Alcotest.(check bool) "0 <= util <= 1" true (u >= 0.0 && u <= 1.0))
    (Stats.utilization r);
  (* the paper reports ~80% peak CPU utilisation at 1Core+0FFT *)
  let cpu_util = List.assoc "cpu" (Stats.mean_utilization_by_kind r) in
  Alcotest.(check bool) "cpu util 70-90%" true (cpu_util > 0.70 && cpu_util < 0.90)

(* ---------------------- Extensions ---------------------- *)

let test_reservation_queue_reduces_overhead () =
  let spec = Reference_apps.pulse_doppler () in
  let run depth =
    run_validation
      ~engine:(Emulator.virtual_seeded ~jitter:0.0 ~reservation_depth:depth 1L)
      (cfg_3c2f ()) [ (spec, 1) ]
  in
  let r0 = run 0 and r2 = run 2 in
  Alcotest.(check int) "same work done" (List.length r0.Stats.records) (List.length r2.Stats.records);
  Alcotest.(check bool) "fewer scheduling invocations" true
    (r2.Stats.sched_invocations < r0.Stats.sched_invocations);
  Alcotest.(check bool) "shorter makespan" true (r2.Stats.makespan_ns < r0.Stats.makespan_ns)

let test_reservation_preserves_functional_output () =
  let spec = Reference_apps.range_detection () in
  let wl = Workload.validation [ (spec, 1) ] in
  match
    Emulator.run_detailed
      ~engine:(Emulator.virtual_seeded ~jitter:0.0 ~reservation_depth:3 1L)
      ~config:(cfg_3c2f ()) ~workload:wl ()
  with
  | Error msg -> Alcotest.fail msg
  | Ok (_, instances) ->
    Alcotest.(check int) "lag still recovered" Reference_apps.Truth.rd_echo_delay
      (Store.get_i32 instances.(0).Task.store "lag")

let test_reservation_dependency_order () =
  let r =
    run_validation
      ~engine:(Emulator.virtual_seeded ~jitter:0.0 ~reservation_depth:4 1L)
      (cfg_3c2f ()) [ (Reference_apps.wifi_tx (), 1) ]
  in
  let order = List.map (fun (t : Stats.task_record) -> t.Stats.node) r.Stats.records in
  Alcotest.(check (list string)) "chain order preserved with queues"
    [ "CRC"; "SCRAMBLE"; "ENCODE"; "INTERLEAVE"; "MODULATE"; "PILOT"; "IFFT" ]
    order

let test_power_policy_prefers_efficient_core () =
  let tasks = rd_tasks () in
  let lfm = tasks.(0) in
  (* big core is faster but burns far more energy per task *)
  let pes = pe_states [ Pe.Cpu Pe.a15_big; Pe.Cpu Pe.a7_little ] in
  let assignments = (Result.get_ok (Scheduler.find "POWER")).Scheduler.schedule (mk_ctx [ lfm ] pes) in
  Alcotest.(check int) "assigned" 1 (List.length assignments);
  Alcotest.(check int) "LITTLE core chosen" 1 (List.hd assignments).Scheduler.pe_index

let test_energy_accounting () =
  let r = run_validation (cfg_3c2f ()) [ (Reference_apps.wifi_rx (), 1) ] in
  Alcotest.(check bool) "energy positive" true (Stats.total_energy_mj r > 0.0);
  Alcotest.(check bool) "busy <= total" true
    (Stats.total_busy_energy_mj r <= Stats.total_energy_mj r +. 1e-9);
  List.iter
    (fun u ->
      let expect_busy =
        float_of_int u.Stats.busy_ns
        *. (if u.Stats.pe_kind = "fft" then Pe.zynq_fft.Pe.busy_w else Pe.a53.Pe.busy_w)
        *. 1e-6
      in
      Alcotest.(check (float 1e-6)) "busy energy formula" expect_busy u.Stats.busy_energy_mj)
    r.Stats.pe_usage

let test_chrome_trace () =
  let r = run_validation (cfg_3c2f ()) [ (Reference_apps.wifi_tx (), 1) ] in
  let json = Stats.chrome_trace r in
  let module Json = Dssoc_json.Json in
  (* the document must survive its own printer/parser and contain one
     complete event per task plus one metadata row per PE *)
  Alcotest.(check bool) "roundtrips" true (Json.parse (Json.to_string json) = Ok json);
  match Result.bind (Json.member "traceEvents" json) Json.to_list with
  | Error e -> Alcotest.fail e
  | Ok events ->
    Alcotest.(check int) "event count" (7 + List.length r.Stats.pe_usage) (List.length events);
    let durs =
      List.filter_map
        (fun e -> match Json.member_opt "dur" e with Some d -> Result.to_option (Json.to_float d) | None -> None)
        events
    in
    Alcotest.(check int) "one span per task" 7 (List.length durs);
    List.iter (fun d -> Alcotest.(check bool) "positive duration" true (d > 0.0)) durs

let test_gantt_renders () =
  let r = run_validation (cfg_3c2f ()) [ (Reference_apps.wifi_tx (), 1) ] in
  let g = Stats.gantt ~width:50 r in
  Alcotest.(check bool) "mentions app" true
    (let rec contains i =
       i + 7 <= String.length g && (String.sub g i 7 = "wifi_tx" || contains (i + 1))
     in
     contains 0);
  (* one row per PE plus legend and axis *)
  Alcotest.(check bool) "row count" true
    (List.length (String.split_on_char '\n' g) >= List.length r.Stats.pe_usage + 2)

(* ---------------------- Native engine ---------------------- *)

let test_native_engine_functional () =
  let spec = Reference_apps.wifi_rx () in
  let wl = Workload.validation [ (spec, 1) ] in
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  match Emulator.run_detailed ~engine:Emulator.native_default ~config ~workload:wl () with
  | Error msg -> Alcotest.fail msg
  | Ok (report, instances) ->
    Alcotest.(check int) "all tasks ran" 9 (List.length report.Stats.records);
    Alcotest.(check int) "crc ok" 1 (Store.get_i32 instances.(0).Task.store "crc_ok");
    Alcotest.(check bool) "wall clock advanced" true (report.Stats.makespan_ns > 0)

let test_native_matches_virtual_functionally () =
  let spec = Reference_apps.range_detection () in
  let wl = Workload.validation [ (spec, 1) ] in
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:0 in
  let _, vi = Result.get_ok (Emulator.run_detailed ~engine:det_engine ~config ~workload:wl ()) in
  let _, ni = Result.get_ok (Emulator.run_detailed ~engine:Emulator.native_default ~config ~workload:wl ()) in
  Alcotest.(check int) "same lag" (Store.get_i32 vi.(0).Task.store "lag")
    (Store.get_i32 ni.(0).Task.store "lag")

(* ---------------------- Scheduler property tests ---------------------- *)

(* A pool of heterogeneous tasks drawn from three reference apps, with
   disjoint id ranges so "same task assigned twice" is detectable. *)
let sched_task_pool () =
  let inst base inst_id spec = (Task.instantiate ~task_id_base:base ~inst_id ~arrival_ns:0 spec).Task.tasks in
  Array.concat
    [
      inst 0 0 (Reference_apps.range_detection ());
      inst 100 1 (Reference_apps.wifi_tx ());
      inst 200 2 (Reference_apps.wifi_rx ());
    ]

let sched_pe_kinds = [| Pe.Cpu Pe.a53; Pe.Cpu Pe.a15_big; Pe.Cpu Pe.a7_little; Pe.Accel Pe.zynq_fft |]

let sched_policy_names = [ "FRFS"; "MET"; "EFT"; "RANDOM"; "POWER" ]

type sched_scenario = {
  sc_kinds : int list;  (** indices into sched_pe_kinds *)
  sc_busy : bool list;  (** per-PE: initially busy? *)
  sc_tasks : int list;  (** indices into the task pool *)
  sc_seed : int;
}

let sched_scenario_gen =
  QCheck.Gen.(
    int_range 1 6 >>= fun n_pes ->
    list_size (return n_pes) (int_range 0 (Array.length sched_pe_kinds - 1)) >>= fun sc_kinds ->
    list_size (return n_pes) bool >>= fun sc_busy ->
    int_range 1 8 >>= fun n_ready ->
    list_size (return n_ready) (int_range 0 1000) >>= fun sc_tasks ->
    int_range 1 100_000 >>= fun sc_seed -> return { sc_kinds; sc_busy; sc_tasks; sc_seed })

let sched_scenario_print sc =
  Printf.sprintf "pes=[%s] busy=[%s] tasks=[%s] seed=%d"
    (String.concat ";" (List.map string_of_int sc.sc_kinds))
    (String.concat ";" (List.map string_of_bool sc.sc_busy))
    (String.concat ";" (List.map string_of_int sc.sc_tasks))
    sc.sc_seed

let sched_scenario_setup sc =
  let pool = sched_task_pool () in
  let ready =
    (* dedupe: a real ready list never contains the same task twice *)
    List.sort_uniq compare (List.map (fun i -> i mod Array.length pool) sc.sc_tasks)
    |> List.map (fun i -> pool.(i))
  in
  let pes =
    Array.of_list
      (List.mapi
         (fun i (k, busy) ->
           {
             Scheduler.pe = Pe.make ~id:i ~kind:sched_pe_kinds.(k);
             idle = not busy;
             busy_until = (if busy then 50_000 else 0);
             available = true;
           })
         (List.combine sc.sc_kinds sc.sc_busy))
  in
  (ready, pes)

(* The core safety invariants every policy must uphold in a single
   scheduling invocation: only originally-idle PEs that support the
   task are targeted, no PE receives two tasks, no task is assigned
   twice. *)
let prop_policies_respect_assignment_invariants =
  QCheck.Test.make ~name:"all policies: assignments target idle supporting PEs, no duplicates"
    ~count:200
    (QCheck.make ~print:sched_scenario_print sched_scenario_gen)
    (fun sc ->
      List.for_all
        (fun policy_name ->
          let ready, pes = sched_scenario_setup sc in
          let originally_idle = Array.map (fun p -> p.Scheduler.idle) pes in
          let ctx =
            {
              Scheduler.now = 0;
              ready = Array.of_list ready;
              nready = List.length ready;
              pes;
              estimate = (fun t i -> Exec_model.estimate_ns t pes.(i).Scheduler.pe);
              prng = Prng.create ~seed:(Int64.of_int sc.sc_seed);
              ops = 0;
            }
          in
          let policy = Result.get_ok (Scheduler.find policy_name) in
          let assignments = policy.Scheduler.schedule ctx in
          let seen_pes = Hashtbl.create 8 in
          let seen_tasks = Hashtbl.create 8 in
          List.for_all
            (fun a ->
              let i = a.Scheduler.pe_index in
              let t = a.Scheduler.task in
              let in_range = i >= 0 && i < Array.length pes in
              in_range
              && originally_idle.(i)
              && Task.supports t pes.(i).Scheduler.pe
              && List.memq t ready
              && (not (Hashtbl.mem seen_pes i))
              && not (Hashtbl.mem seen_tasks t.Task.id)
              |> fun ok ->
              Hashtbl.replace seen_pes i ();
              Hashtbl.replace seen_tasks t.Task.id ();
              ok)
            assignments)
        sched_policy_names)

(* On an all-idle system EFT's look-ahead must never pick a PE that
   finishes later than MET's pure minimum-execution-time choice. *)
let prop_eft_no_worse_than_met_when_all_idle =
  QCheck.Test.make ~name:"EFT finish <= MET finish on an all-idle system" ~count:200
    (QCheck.make ~print:sched_scenario_print sched_scenario_gen)
    (fun sc ->
      let sc = { sc with sc_busy = List.map (fun _ -> false) sc.sc_busy } in
      let pool = sched_task_pool () in
      let task = pool.(List.hd sc.sc_tasks mod Array.length pool) in
      let run policy_name =
        let _, pes = sched_scenario_setup sc in
        let ctx =
          {
            Scheduler.now = 0;
            ready = [| task |];
            nready = 1;
            pes;
            estimate = (fun t i -> Exec_model.estimate_ns t pes.(i).Scheduler.pe);
            prng = Prng.create ~seed:(Int64.of_int sc.sc_seed);
            ops = 0;
          }
        in
        ((Result.get_ok (Scheduler.find policy_name)).Scheduler.schedule ctx, pes)
      in
      match (run "EFT", run "MET") with
      | ([ e ], e_pes), ([ m ], m_pes) ->
        let finish pes (a : Scheduler.assignment) =
          Exec_model.estimate_ns task pes.(a.Scheduler.pe_index).Scheduler.pe
        in
        finish e_pes e <= finish m_pes m
      | ([], _), ([], _) -> true (* no supporting PE in the drawn kinds *)
      | _ -> false (* one policy found a placement the other missed *))

let prop_virtual_deterministic_across_policies =
  QCheck.Test.make ~name:"virtual engine deterministic per (seed, policy)" ~count:8
    (QCheck.make
       ~print:(fun (s, p) -> Printf.sprintf "seed=%d policy=%s" s p)
       QCheck.Gen.(pair (int_range 1 1000) (oneofl [ "FRFS"; "MET"; "EFT"; "RANDOM" ])))
    (fun (seed, policy) ->
      let engine = Emulator.virtual_seeded ~jitter:0.02 (Int64.of_int seed) in
      let spec = Reference_apps.wifi_tx () in
      let run () = run_validation ~policy ~engine (cfg_3c2f ()) [ (spec, 2) ] in
      (run ()).Stats.makespan_ns = (run ()).Stats.makespan_ns)

let () =
  Alcotest.run "runtime"
    [
      ( "task",
        [
          Alcotest.test_case "instantiate" `Quick test_instantiate;
          Alcotest.test_case "platform matching" `Quick test_supports_generic_cpu;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "frfs order" `Quick test_frfs_order;
          Alcotest.test_case "frfs skips unsupported" `Quick test_frfs_skips_unsupported;
          Alcotest.test_case "met min exec" `Quick test_met_picks_min_exec;
          Alcotest.test_case "eft waits for favorite" `Quick test_eft_waits_for_busy_favorite;
          Alcotest.test_case "eft falls back to idle" `Quick test_eft_uses_idle_when_better;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic_with_seed;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "overhead model" `Quick test_overhead_model;
          qtest prop_policies_respect_assignment_invariants;
          qtest prop_eft_no_worse_than_met_when_all_idle;
        ] );
      ( "exec_model",
        [
          Alcotest.test_case "core scaling" `Quick test_estimate_scales_with_core;
          Alcotest.test_case "unsupported" `Quick test_estimate_unsupported;
          Alcotest.test_case "table matches recomputation" `Quick
            test_estimate_table_matches_recomputation;
        ] );
      ( "virtual_engine",
        [
          Alcotest.test_case "range detection functional" `Quick test_rd_emulation_functional;
          Alcotest.test_case "wifi rx functional" `Quick test_wifi_rx_emulation_functional;
          Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
          Alcotest.test_case "jitter variance" `Quick test_jitter_produces_variance;
          Alcotest.test_case "unsupported task" `Quick test_unsupported_task_rejected;
          Alcotest.test_case "unknown policy" `Quick test_unknown_policy_rejected;
          Alcotest.test_case "report invariants" `Slow test_report_invariants;
          Alcotest.test_case "dependency order" `Quick test_predecessors_complete_first;
          Alcotest.test_case "more cores faster" `Slow test_more_cores_faster;
          Alcotest.test_case "2C+2F plateau" `Slow test_2c2f_plateau;
          Alcotest.test_case "all policies complete" `Slow test_policies_complete_workload;
          Alcotest.test_case "performance mode" `Slow test_performance_mode_run;
          Alcotest.test_case "odroid portability" `Quick test_odroid_runs_same_apps;
          Alcotest.test_case "utilization bounds" `Slow test_utilization_bounds;
          qtest prop_virtual_deterministic_across_policies;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "reservation reduces overhead" `Slow test_reservation_queue_reduces_overhead;
          Alcotest.test_case "reservation functional" `Quick test_reservation_preserves_functional_output;
          Alcotest.test_case "reservation dependency order" `Quick test_reservation_dependency_order;
          Alcotest.test_case "power policy" `Quick test_power_policy_prefers_efficient_core;
          Alcotest.test_case "energy accounting" `Quick test_energy_accounting;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
          Alcotest.test_case "gantt" `Quick test_gantt_renders;
        ] );
      ( "native_engine",
        [
          Alcotest.test_case "functional run" `Slow test_native_engine_functional;
          Alcotest.test_case "matches virtual" `Slow test_native_matches_virtual_functionally;
        ] );
    ]
