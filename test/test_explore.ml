(* Tests of the parallel design-space exploration engine: the domain
   pool, seed derivation, grid enumeration, and the determinism
   contract (same grid => byte-identical serialized tables for any
   worker count). *)

module Pool = Dssoc_explore.Pool
module Grid = Dssoc_explore.Grid
module Sweep = Dssoc_explore.Sweep
module Presets = Dssoc_explore.Presets
module Config = Dssoc_soc.Config
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module Prng = Dssoc_util.Prng
module Json = Dssoc_json.Json

(* ---------------------- Pool ---------------------- *)

let test_pool_map_identity () =
  List.iter
    (fun jobs ->
      let r = Pool.map ~jobs ~n:100 (fun i -> i * i) in
      Alcotest.(check int) "length" 100 (Array.length r);
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d (jobs=%d)" i jobs) (i * i) v)
        r)
    [ 1; 2; 7; 100; 200 ]

let test_pool_zero_items () =
  Alcotest.(check int) "empty" 0 (Array.length (Pool.map ~jobs:4 ~n:0 (fun i -> i)));
  Alcotest.check_raises "negative n" (Invalid_argument "Pool.map: negative item count") (fun () ->
      ignore (Pool.map ~jobs:4 ~n:(-1) (fun i -> i)))

exception Boom of int

let test_pool_exception_lowest_index () =
  (* Multiple failures: the lowest-index one must surface, whatever
     the worker count. *)
  List.iter
    (fun jobs ->
      match Pool.map ~jobs ~n:50 (fun i -> if i mod 10 = 7 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected exception"
      | exception Boom i -> Alcotest.(check int) (Printf.sprintf "jobs=%d" jobs) 7 i)
    [ 1; 3; 8 ]

let test_pool_iter_covers_all () =
  let hits = Array.make 64 0 in
  (* each index is claimed exactly once, so unsynchronised writes to
     distinct slots are race-free *)
  Pool.iter ~jobs:4 ~n:64 (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri (fun i h -> Alcotest.(check int) (Printf.sprintf "slot %d" i) 1 h) hits

(* ---------------------- Prng.derive_seed ---------------------- *)

let test_derive_seed_pure_and_distinct () =
  let s1 = Prng.derive_seed ~seed:42L ~index:5 in
  let s2 = Prng.derive_seed ~seed:42L ~index:5 in
  Alcotest.(check int64) "pure function of (seed, index)" s1 s2;
  let seeds = List.init 1000 (fun i -> Prng.derive_seed ~seed:42L ~index:i) in
  Alcotest.(check int) "all indices give distinct seeds" 1000
    (List.length (List.sort_uniq compare seeds));
  Alcotest.(check bool) "different base seeds diverge" true
    (Prng.derive_seed ~seed:1L ~index:0 <> Prng.derive_seed ~seed:2L ~index:0);
  Alcotest.check_raises "negative index" (Invalid_argument "Prng.derive_seed: negative index")
    (fun () -> ignore (Prng.derive_seed ~seed:1L ~index:(-1)))

let test_derive_streams_independent () =
  let a = Prng.derive ~seed:7L ~index:0 in
  let b = Prng.derive ~seed:7L ~index:1 in
  Alcotest.(check bool) "neighbouring streams differ" true (Prng.bits64 a <> Prng.bits64 b)

(* ---------------------- Grid ---------------------- *)

let small_grid ?(jitter = 0.02) ?(replicates = 3) () =
  let c1 = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let c2 = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  Grid.make ~label:"small" ~replicates ~base_seed:42L ~jitter
    ~configs:[ (c1.Config.label, c1); (c2.Config.label, c2) ]
    ~policies:[ "FRFS"; "MET" ]
    ~workloads:
      [
        Grid.fixed_workload ~label:"tx" (Workload.validation [ (Reference_apps.wifi_tx (), 1) ]);
        Grid.fixed_workload ~label:"rd"
          (Workload.validation [ (Reference_apps.range_detection (), 1) ]);
      ]
    ()

let test_grid_size_and_order () =
  let g = small_grid () in
  Alcotest.(check int) "size = 2*2*2*3" 24 (Grid.size g);
  let pts = Grid.points g in
  Alcotest.(check int) "points = size" 24 (Array.length pts);
  Array.iteri (fun i p -> Alcotest.(check int) "indices sequential" i p.Grid.index) pts;
  (* row-major: configs, then policies, then workloads, then replicates *)
  Alcotest.(check string) "first config" "1Core+0FFT" pts.(0).Grid.config_label;
  Alcotest.(check string) "first policy" "FRFS" pts.(0).Grid.policy;
  Alcotest.(check string) "first workload" "tx" pts.(0).Grid.wl_label;
  Alcotest.(check int) "replicate varies fastest" 1 pts.(1).Grid.replicate;
  Alcotest.(check string) "workload next" "rd" pts.(3).Grid.wl_label;
  Alcotest.(check string) "policy after workloads" "MET" pts.(6).Grid.policy;
  Alcotest.(check string) "config slowest" "2Core+1FFT" pts.(12).Grid.config_label;
  (* seeds are the index-derived streams *)
  Array.iter
    (fun p ->
      Alcotest.(check int64) "seed = derive_seed(base, index)"
        (Prng.derive_seed ~seed:42L ~index:p.Grid.index)
        p.Grid.seed)
    pts

let test_grid_validation () =
  let c = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let configs = [ (c.Config.label, c) ] in
  let wl = [ Grid.fixed_workload ~label:"w" (Workload.validation [ (Reference_apps.wifi_tx (), 1) ]) ] in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty configs" true
    (raises (fun () -> Grid.make ~configs:[] ~policies:[ "FRFS" ] ~workloads:wl ()));
  Alcotest.(check bool) "empty policies" true
    (raises (fun () -> Grid.make ~configs ~policies:[] ~workloads:wl ()));
  Alcotest.(check bool) "unknown policy" true
    (raises (fun () -> Grid.make ~configs ~policies:[ "HEFT2000" ] ~workloads:wl ()));
  Alcotest.(check bool) "zero replicates" true
    (raises (fun () -> Grid.make ~replicates:0 ~configs ~policies:[ "FRFS" ] ~workloads:wl ()));
  Alcotest.(check bool) "negative jitter" true
    (raises (fun () -> Grid.make ~jitter:(-0.1) ~configs ~policies:[ "FRFS" ] ~workloads:wl ()))

(* ---------------------- Sweep determinism ---------------------- *)

let test_sweep_deterministic_across_jobs () =
  (* The tentpole contract: identical serialized tables for jobs=1 and
     jobs=4 even with jitter (per-point PRNG streams). *)
  let g = small_grid ~jitter:0.02 ~replicates:2 () in
  let t1 = Sweep.run ~jobs:1 g in
  let t4 = Sweep.run ~jobs:4 g in
  Alcotest.(check string) "CSV identical" (Sweep.to_csv t1) (Sweep.to_csv t4);
  Alcotest.(check string) "JSON identical"
    (Json.to_string (Sweep.to_json t1))
    (Json.to_string (Sweep.to_json t4));
  (* and a third run of the same grid is a full replay *)
  let t1' = Sweep.run ~jobs:1 g in
  Alcotest.(check string) "replay identical" (Sweep.to_csv t1) (Sweep.to_csv t1')

let test_sweep_jitter_varies_replicates () =
  (* Sanity check that determinism does not come from the jitter being
     ignored: replicates of a jittered cell must differ. *)
  let g = small_grid ~jitter:0.05 ~replicates:3 () in
  let t = Sweep.run ~jobs:2 g in
  let cell =
    List.filter
      (fun (r : Sweep.row) -> r.Sweep.config = "1Core+0FFT" && r.Sweep.policy = "FRFS" && r.Sweep.workload = "rd")
      t.Sweep.rows
  in
  Alcotest.(check int) "three replicates" 3 (List.length cell);
  Alcotest.(check bool) "replicates differ under jitter" true
    (List.length (List.sort_uniq compare (List.map (fun r -> r.Sweep.makespan_ns) cell)) > 1)

let test_sweep_row_fields () =
  let g = small_grid ~jitter:0.0 ~replicates:1 () in
  let t = Sweep.run ~jobs:1 g in
  Alcotest.(check int) "row per point" (Grid.size g) (List.length t.Sweep.rows);
  List.iter
    (fun (r : Sweep.row) ->
      Alcotest.(check bool) "positive makespan" true (r.Sweep.makespan_ns > 0);
      Alcotest.(check int) "one job" 1 r.Sweep.job_count;
      Alcotest.(check bool) "tasks ran" true (r.Sweep.task_count > 0);
      Alcotest.(check bool) "utilisation present" true (r.Sweep.util_by_kind <> []))
    t.Sweep.rows;
  (* deterministic cells: MET on the 1-CPU config equals FRFS there is
     not guaranteed, but wifi_tx chain on 1 CPU must cost the same
     under both policies (no scheduling freedom) *)
  let m policy =
    (List.find
       (fun (r : Sweep.row) ->
         r.Sweep.config = "1Core+0FFT" && r.Sweep.policy = policy && r.Sweep.workload = "tx")
       t.Sweep.rows)
      .Sweep.makespan_ns
  in
  Alcotest.(check bool) "chain on one PE: policies within overhead noise" true
    (float_of_int (abs (m "FRFS" - m "MET")) /. float_of_int (m "FRFS") < 0.25)

let test_sweep_compiled_obs_columns () =
  (* Regression for the compiled engine's lowered observability: on a
     fig9-class preset the compiled table must be byte-identical to
     the virtual one — in particular the four metrics-derived columns
     and the two critical-path columns, which used to read zero under
     the compiled engine — and the columns must be live, not
     vacuously-equal zeros. *)
  let g = Result.get_ok (Presets.by_name ~replicates:1 "fig9") in
  let tv = Sweep.run ~jobs:2 ~engine:`Virtual g in
  let tc = Sweep.run ~jobs:2 ~engine:`Compiled g in
  Alcotest.(check string) "CSV byte-identical across engines" (Sweep.to_csv tv) (Sweep.to_csv tc);
  List.iter2
    (fun (v : Sweep.row) (c : Sweep.row) ->
      let label = Printf.sprintf "%s/%s/%s" v.Sweep.config v.Sweep.policy v.Sweep.workload in
      Alcotest.(check int) (label ^ ": max_ready_depth") v.Sweep.max_ready_depth
        c.Sweep.max_ready_depth;
      Alcotest.(check int) (label ^ ": max_inflight") v.Sweep.max_inflight c.Sweep.max_inflight;
      Alcotest.(check (float 0.0)) (label ^ ": mean_wait_us") v.Sweep.mean_wait_us
        c.Sweep.mean_wait_us;
      Alcotest.(check (float 0.0)) (label ^ ": p95_service_us") v.Sweep.p95_service_us
        c.Sweep.p95_service_us;
      Alcotest.(check (float 0.0)) (label ^ ": crit_path_us") v.Sweep.crit_path_us
        c.Sweep.crit_path_us;
      Alcotest.(check (float 0.0)) (label ^ ": crit_path_dma_frac") v.Sweep.crit_path_dma_frac
        c.Sweep.crit_path_dma_frac;
      Alcotest.(check bool) (label ^ ": obs columns live") true
        (c.Sweep.max_inflight > 0 && c.Sweep.p95_service_us > 0.0 && c.Sweep.crit_path_us > 0.0);
      Alcotest.(check (float 1e-6)) (label ^ ": crit path equals makespan")
        (float_of_int c.Sweep.makespan_ns /. 1e3)
        c.Sweep.crit_path_us)
    tv.Sweep.rows tc.Sweep.rows

let test_summarize_counts () =
  let g = small_grid ~jitter:0.01 ~replicates:4 () in
  let t = Sweep.run ~jobs:2 g in
  let summaries = Sweep.summarize t in
  Alcotest.(check int) "one summary per cell" 8 (List.length summaries);
  List.iter (fun s -> Alcotest.(check int) "n = replicates" 4 s.Sweep.n) summaries;
  (* summary order is grid order *)
  let first = List.hd summaries in
  Alcotest.(check string) "first cell config" "1Core+0FFT" first.Sweep.s_config;
  Alcotest.(check string) "first cell workload" "tx" first.Sweep.s_workload

let test_presets () =
  Alcotest.(check int) "fig9 size" (9 * 1 * 1 * 2) (Grid.size (Presets.fig9 ~replicates:2 ()));
  Alcotest.(check int) "fig10 size" (1 * 3 * 5 * 1) (Grid.size (Presets.fig10 ()));
  Alcotest.(check int) "fig11 size" (8 * 1 * 5 * 1) (Grid.size (Presets.fig11 ()));
  Alcotest.(check bool) "by_name finds fig9" true (Result.is_ok (Presets.by_name "FIG9"));
  (match Presets.by_name "fig12" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg -> Alcotest.(check bool) "lists available grids" true (String.length msg > 0));
  match Presets.by_name ~replicates:7 "fig10" with
  | Error e -> Alcotest.fail e
  | Ok g -> Alcotest.(check int) "override applies" 7 g.Grid.replicates

let () =
  Alcotest.run "explore"
    [
      ( "pool",
        [
          Alcotest.test_case "map identity" `Quick test_pool_map_identity;
          Alcotest.test_case "zero and negative n" `Quick test_pool_zero_items;
          Alcotest.test_case "lowest-index failure wins" `Quick test_pool_exception_lowest_index;
          Alcotest.test_case "iter covers all items" `Quick test_pool_iter_covers_all;
        ] );
      ( "prng",
        [
          Alcotest.test_case "derive_seed pure and distinct" `Quick test_derive_seed_pure_and_distinct;
          Alcotest.test_case "derived streams independent" `Quick test_derive_streams_independent;
        ] );
      ( "grid",
        [
          Alcotest.test_case "size and enumeration order" `Quick test_grid_size_and_order;
          Alcotest.test_case "validation" `Quick test_grid_validation;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "deterministic across jobs" `Slow test_sweep_deterministic_across_jobs;
          Alcotest.test_case "jitter varies replicates" `Slow test_sweep_jitter_varies_replicates;
          Alcotest.test_case "row fields" `Quick test_sweep_row_fields;
          Alcotest.test_case "compiled obs columns match virtual" `Slow
            test_sweep_compiled_obs_columns;
          Alcotest.test_case "summarize" `Slow test_summarize_counts;
          Alcotest.test_case "presets" `Quick test_presets;
        ] );
    ]
