module Quantile = Dssoc_stats.Quantile
module Table = Dssoc_stats.Table

let qtest = QCheck_alcotest.to_alcotest

let test_mean_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Quantile.mean xs);
  Alcotest.(check bool) "stddev ~2.138" true (Float.abs (Quantile.stddev xs -. 2.138) < 0.01);
  Alcotest.(check (float 1e-9)) "singleton stddev" 0.0 (Quantile.stddev [| 3.0 |])

let test_quantiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "min" 1.0 (Quantile.quantile xs 0.0);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Quantile.quantile xs 1.0);
  Alcotest.(check (float 1e-9)) "median interpolates" 2.5 (Quantile.median xs);
  Alcotest.(check (float 1e-9)) "q1" 1.75 (Quantile.quantile xs 0.25)

let test_quantile_unsorted_input () =
  Alcotest.(check (float 1e-9)) "unsorted" 2.5 (Quantile.median [| 4.0; 1.0; 3.0; 2.0 |])

let test_empty_rejected () =
  Alcotest.(check bool) "empty mean" true
    (try
       ignore (Quantile.mean [||]);
       false
     with Invalid_argument _ -> true)

let test_boxplot () =
  let b = Quantile.boxplot [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "lo" 1.0 b.Quantile.lo;
  Alcotest.(check (float 1e-9)) "med" 3.0 b.Quantile.med;
  Alcotest.(check (float 1e-9)) "hi" 5.0 b.Quantile.hi;
  Alcotest.(check (float 1e-9)) "q1" 2.0 b.Quantile.q1;
  Alcotest.(check (float 1e-9)) "q3" 4.0 b.Quantile.q3

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.)) (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (l, (q1, q2)) ->
      let xs = Array.of_list l in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Quantile.quantile xs lo <= Quantile.quantile xs hi +. 1e-9)

let prop_quantile_within_range =
  QCheck.Test.make ~name:"quantile inside [min,max]" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.)) (float_range 0. 1.))
    (fun (l, q) ->
      let xs = Array.of_list l in
      let v = Quantile.quantile xs q in
      v >= Quantile.min xs -. 1e-9 && v <= Quantile.max xs +. 1e-9)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* header, rule, two rows, trailing newline -> 5 splits *)
  Alcotest.(check bool) "pads short rows" true (String.length (List.nth lines 3) > 0)

let test_table_csv () =
  Alcotest.(check string) "csv" "a,b\n1,2\n" (Table.render_csv ~header:[ "a"; "b" ] ~rows:[ [ "1"; "2" ] ])

let test_csv_field () =
  (* RFC 4180: quote only when necessary, double embedded quotes. *)
  List.iter
    (fun (raw, escaped) -> Alcotest.(check string) raw escaped (Table.csv_field raw))
    [
      ("plain", "plain");
      ("", "");
      ("has space", "has space");
      ("a,b", "\"a,b\"");
      ("say \"hi\"", "\"say \"\"hi\"\"\"");
      ("line\nbreak", "\"line\nbreak\"");
      ("cr\rhere", "\"cr\rhere\"");
    ]

let test_csv_field_in_render_csv () =
  Alcotest.(check string) "cells escaped"
    "a,b\n\"1,5\",\"x\"\"y\"\n"
    (Table.render_csv ~header:[ "a"; "b" ] ~rows:[ [ "1,5"; "x\"y" ] ])

let test_bar_chart () =
  let s = Table.bar_chart ~width:10 [ ("x", 10.0); ("y", 5.0) ] in
  Alcotest.(check bool) "contains full bar" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && String.contains l '#'))

let test_box_row () =
  let s = Table.box_row ~width:21 ~scale_hi:20.0 ~lo:0.0 ~q1:5.0 ~med:10.0 ~q3:15.0 ~hi:20.0 () in
  Alcotest.(check int) "width respected" 21 (String.length s);
  Alcotest.(check char) "median marker" '#' s.[10];
  Alcotest.(check char) "low whisker" '|' s.[0];
  Alcotest.(check char) "high whisker" '|' s.[20]

let test_series () =
  let s =
    Table.series ~x_label:"rate" ~xs:[ 1.0; 2.0 ]
      ~curves:[ ("FRFS", [ 10.0; 20.0 ]); ("MET", [ 15.0; 30.0 ]) ]
      ()
  in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check int) "4 lines + trailing" 5 (List.length (String.split_on_char '\n' s))

let () =
  Alcotest.run "stats"
    [
      ( "quantile",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "unsorted input" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "boxplot" `Quick test_boxplot;
          qtest prop_quantile_monotone;
          qtest prop_quantile_within_range;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "csv field escaping" `Quick test_csv_field;
          Alcotest.test_case "csv render escapes cells" `Quick test_csv_field_in_render_csv;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "box row" `Quick test_box_row;
          Alcotest.test_case "series" `Quick test_series;
        ] );
    ]
