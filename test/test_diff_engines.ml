(* Differential tests between the two emulation engines.

   The virtual engine is a discrete-event simulation; the native
   engine runs tasks on real OCaml domains under wall-clock time.
   Their timings legitimately differ, but on small configurations
   where the scheduler has no real freedom the *decisions* must agree:
   same task set, same per-task DAG ordering, same PE assignments and
   same functional outputs.  Makespans only have to land in a very
   coarse tolerance band — the virtual clock models the target SoC,
   the native clock measures this host. *)

module Task = Dssoc_runtime.Task
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Config = Dssoc_soc.Config
module App_spec = Dssoc_apps.App_spec
module Store = Dssoc_apps.Store
module Reference_apps = Dssoc_apps.Reference_apps
module Workload = Dssoc_apps.Workload
module Obs = Dssoc_obs.Obs

let det_engine = Emulator.virtual_seeded ~jitter:0.0 1L

let run_both config spec instances =
  let wl () = Workload.validation [ (spec, instances) ] in
  let vr, vi =
    Result.get_ok (Emulator.run_detailed ~engine:det_engine ~config ~workload:(wl ()) ())
  in
  let nr, ni =
    Result.get_ok (Emulator.run_detailed ~engine:Emulator.native_default ~config ~workload:(wl ()) ())
  in
  ((vr, vi), (nr, ni))

(* Completion order can differ between engines when several tasks run
   concurrently; compare records keyed by (instance, node) instead. *)
let by_task (r : Stats.report) =
  List.sort compare (List.map (fun (t : Stats.task_record) -> ((t.Stats.instance, t.Stats.node), t.Stats.pe)) r.Stats.records)

let check_counts (vr : Stats.report) (nr : Stats.report) =
  Alcotest.(check int) "job count agrees" vr.Stats.job_count nr.Stats.job_count;
  Alcotest.(check int) "task count agrees" vr.Stats.task_count nr.Stats.task_count;
  Alcotest.(check int) "record count agrees" (List.length vr.Stats.records)
    (List.length nr.Stats.records)

let check_makespan_band (vr : Stats.report) (nr : Stats.report) =
  (* Deliberately coarse: the two clocks measure different machines.
     The band still catches a hung engine (hours) or a no-op engine
     (zero / negative makespan). *)
  let ratio = float_of_int nr.Stats.makespan_ns /. float_of_int (max 1 vr.Stats.makespan_ns) in
  Alcotest.(check bool) "native makespan positive" true (nr.Stats.makespan_ns > 0);
  Alcotest.(check bool)
    (Printf.sprintf "makespan ratio %.3f within [1e-3, 1e3]" ratio)
    true
    (ratio > 1e-3 && ratio < 1e3)

let test_chain_parity () =
  (* wifi_tx is a linear chain: only one task is ever ready, so FRFS
     must make identical decisions in both engines — every task on the
     first CPU, in chain order. *)
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:0 in
  let (vr, vi), (nr, ni) = run_both config (Reference_apps.wifi_tx ()) 1 in
  check_counts vr nr;
  let order (r : Stats.report) = List.map (fun (t : Stats.task_record) -> t.Stats.node) r.Stats.records in
  Alcotest.(check (list string)) "same completion order" (order vr) (order nr);
  Alcotest.(check bool) "same per-task PE assignments" true (by_task vr = by_task nr);
  List.iter
    (fun (t : Stats.task_record) ->
      Alcotest.(check string) (t.Stats.node ^ " on first cpu") "cpu0" t.Stats.pe)
    nr.Stats.records;
  check_makespan_band vr nr;
  (* functional outputs agree bit-for-bit *)
  Alcotest.(check bool) "same transmitted time-domain signal" true
    (Store.get_cbuf vi.(0).Task.store "tx_time" = Store.get_cbuf ni.(0).Task.store "tx_time")

let test_dag_parity_single_pe () =
  (* range_detection is a diamond DAG; on a single CPU both engines
     serialise it, and every linear extension they pick must respect
     the DAG.  With one PE and FRFS the ready-list evolution is fully
     determined, so the orders must also be identical. *)
  let config = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let spec = Reference_apps.range_detection () in
  let (vr, vi), (nr, ni) = run_both config spec 1 in
  check_counts vr nr;
  let order (r : Stats.report) = List.map (fun (t : Stats.task_record) -> t.Stats.node) r.Stats.records in
  Alcotest.(check (list string)) "same serialisation" (order vr) (order nr);
  Alcotest.(check bool) "all on the single PE" true
    (List.for_all (fun (t : Stats.task_record) -> t.Stats.pe = "cpu0") nr.Stats.records);
  (* both serialisations are topological orders of the app DAG *)
  let check_topological (r : Stats.report) name =
    let position = List.mapi (fun i (t : Stats.task_record) -> (t.Stats.node, i)) r.Stats.records in
    List.iter
      (fun (n : App_spec.node) ->
        List.iter
          (fun pred ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s before %s" name pred n.App_spec.node_name)
              true
              (List.assoc pred position < List.assoc n.App_spec.node_name position))
          n.App_spec.predecessors)
      spec.App_spec.nodes
  in
  check_topological vr "virtual";
  check_topological nr "native";
  check_makespan_band vr nr;
  Alcotest.(check int) "same recovered lag" (Store.get_i32 vi.(0).Task.store "lag")
    (Store.get_i32 ni.(0).Task.store "lag")

let test_multi_instance_parity () =
  (* Two chain instances on one CPU: arrival order forces instance 0's
     chain to interleave deterministically ahead of instance 1 under
     FRFS in both engines. *)
  let config = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let (vr, _), (nr, _) = run_both config (Reference_apps.wifi_tx ()) 2 in
  check_counts vr nr;
  Alcotest.(check bool) "same per-task PE assignments" true (by_task vr = by_task nr);
  let per_instance_order (r : Stats.report) inst =
    List.filter_map
      (fun (t : Stats.task_record) -> if t.Stats.instance = inst then Some t.Stats.node else None)
      r.Stats.records
  in
  let chain = [ "CRC"; "SCRAMBLE"; "ENCODE"; "INTERLEAVE"; "MODULATE"; "PILOT"; "IFFT" ] in
  List.iter
    (fun inst ->
      Alcotest.(check (list string))
        (Printf.sprintf "virtual instance %d follows the chain" inst)
        chain (per_instance_order vr inst);
      Alcotest.(check (list string))
        (Printf.sprintf "native instance %d follows the chain" inst)
        chain (per_instance_order nr inst))
    [ 0; 1 ]

(* ------------- functional-agreement matrix ------------- *)

(* Both engines run the same Engine_core protocol; what differs is
   timing (modelled vs measured).  Timing legitimately changes *which*
   PE a policy picks, so across the full matrix of reference apps x
   policies x reservation depths we do not compare assignments between
   engines — we assert what must hold regardless of timing: the same
   task population ran, every task completed on a PE that exists in
   the configuration and supports it, and the kernels computed
   identical output data (kernels are the same host closures on every
   PE, so outputs are assignment-independent). *)

let matrix_apps =
  [
    ("range_detection", Reference_apps.range_detection);
    ("wifi_tx", Reference_apps.wifi_tx);
    ("wifi_rx", Reference_apps.wifi_rx);
    ("pulse_doppler", Reference_apps.pulse_doppler);
  ]

let matrix_policies = [ "FRFS"; "MET"; "EFT"; "RANDOM"; "POWER" ]
let matrix_depths = [ 0; 2 ]

let check_stores_agree label (vi : Task.instance array) (ni : Task.instance array) =
  Alcotest.(check int) (label ^ ": same instance count") (Array.length vi) (Array.length ni);
  Array.iteri
    (fun i (v : Task.instance) ->
      let n = ni.(i) in
      List.iter
        (fun var ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: instance %d var %s agrees" label i var)
            true
            (Store.get_raw v.Task.store var = Store.get_raw n.Task.store var))
        (Store.names v.Task.store))
    vi

let check_assignments_valid label config (instances : Task.instance array) =
  let pes = Config.pes config in
  Array.iter
    (fun (inst : Task.instance) ->
      Array.iter
        (fun (t : Task.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s/%s done" label t.Task.app_name t.Task.node.App_spec.node_name)
            true (t.Task.status = Task.Done);
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s/%s ran on a supporting PE (%s)" label t.Task.app_name
               t.Task.node.App_spec.node_name t.Task.pe_label)
            true
            (List.exists
               (fun (pe : Dssoc_soc.Pe.t) ->
                 pe.Dssoc_soc.Pe.label = t.Task.pe_label && Task.supports t pe)
               pes))
        inst.Task.tasks)
    instances

let test_functional_agreement_matrix () =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  List.iter
    (fun (app_name, spec_fn) ->
      List.iter
        (fun policy ->
          List.iter
            (fun depth ->
              let label = Printf.sprintf "%s/%s/depth%d" app_name policy depth in
              let wl () = Workload.validation [ (spec_fn (), 1) ] in
              let vr, vi =
                Result.get_ok
                  (Emulator.run_detailed
                     ~engine:(Emulator.virtual_seeded ~jitter:0.0 ~reservation_depth:depth 1L)
                     ~policy ~config ~workload:(wl ()) ())
              in
              let nr, ni =
                Result.get_ok
                  (Emulator.run_detailed
                     ~engine:(Emulator.native_seeded ~reservation_depth:depth 1L)
                     ~policy ~config ~workload:(wl ()) ())
              in
              check_counts vr nr;
              check_makespan_band vr nr;
              check_assignments_valid (label ^ "/virtual") config vi;
              check_assignments_valid (label ^ "/native") config ni;
              check_stores_agree label vi ni)
            matrix_depths)
        matrix_policies)
    matrix_apps

(* ---------------- reservation queues (depth > 0) ---------------- *)

(* With reservation_depth > 0 the shared workload manager takes the
   batched-completion branch (handler capacity > 1 defers do_schedule
   until the monitoring sweep finishes).  Parity pins down that
   batching changes *when* the scheduler runs, never *what* it decides
   on constrained configurations. *)

let run_virtual_depth config spec instances depth =
  let wl = Workload.validation [ (spec, instances) ] in
  Result.get_ok
    (Emulator.run_detailed
       ~engine:(Emulator.virtual_seeded ~jitter:0.0 ~reservation_depth:depth 1L)
       ~config ~workload:wl ())

let test_reservation_chain_parity () =
  (* Linear chain on two CPUs: one task ready at a time, so depth 1
     and 3 must produce the same assignments as the native engine. *)
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:0 in
  let spec = Reference_apps.wifi_tx () in
  let (_, _), (nr, ni) = run_both config spec 1 in
  List.iter
    (fun depth ->
      let vr, vi = run_virtual_depth config spec 1 depth in
      check_counts vr nr;
      Alcotest.(check bool)
        (Printf.sprintf "depth %d: same per-task PE assignments" depth)
        true
        (by_task vr = by_task nr);
      Alcotest.(check bool)
        (Printf.sprintf "depth %d: batching exercised" depth)
        true
        (vr.Stats.sched_invocations > 0);
      check_makespan_band vr nr;
      Alcotest.(check bool)
        (Printf.sprintf "depth %d: same transmitted signal" depth)
        true
        (Store.get_cbuf vi.(0).Task.store "tx_time"
        = Store.get_cbuf ni.(0).Task.store "tx_time"))
    [ 1; 3 ]

let test_reservation_multi_instance_parity () =
  (* Two chain instances on one CPU: the reservation queue lets the WM
     pre-assign the next ready task behind the running one, but with a
     single PE the assignment target is forced, so per-task PEs and
     per-instance chain order must still agree with the native run. *)
  let config = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let spec = Reference_apps.wifi_tx () in
  let (_, _), (nr, _) = run_both config spec 2 in
  let chain = [ "CRC"; "SCRAMBLE"; "ENCODE"; "INTERLEAVE"; "MODULATE"; "PILOT"; "IFFT" ] in
  List.iter
    (fun depth ->
      let vr, _ = run_virtual_depth config spec 2 depth in
      check_counts vr nr;
      Alcotest.(check bool)
        (Printf.sprintf "depth %d: same per-task PE assignments" depth)
        true
        (by_task vr = by_task nr);
      let per_instance_order inst =
        List.filter_map
          (fun (t : Stats.task_record) ->
            if t.Stats.instance = inst then Some t.Stats.node else None)
          vr.Stats.records
      in
      List.iter
        (fun inst ->
          Alcotest.(check (list string))
            (Printf.sprintf "depth %d: instance %d follows the chain" depth inst)
            chain (per_instance_order inst))
        [ 0; 1 ])
    [ 1; 3 ]

let test_reservation_fewer_invocations_same_decisions () =
  (* Depth 0 vs depth 2 on the same DAG and single PE: batched
     completions must reduce scheduler invocations without changing a
     single assignment. *)
  let config = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let spec = Reference_apps.range_detection () in
  let vr0, vi0 = run_virtual_depth config spec 1 0 in
  let vr2, vi2 = run_virtual_depth config spec 1 2 in
  Alcotest.(check bool) "same per-task PE assignments" true (by_task vr0 = by_task vr2);
  Alcotest.(check bool) "depth 2 schedules no more often" true
    (vr2.Stats.sched_invocations <= vr0.Stats.sched_invocations);
  Alcotest.(check int) "same recovered lag" (Store.get_i32 vi0.(0).Task.store "lag")
    (Store.get_i32 vi2.(0).Task.store "lag")

let test_native_reservation_depth_differential () =
  (* The native engine now runs the same reservation queues as the
     virtual one.  Two chain instances on one CPU leave the scheduler
     no freedom, so depth 0 and depth 2 native runs must make the same
     decisions and compute the same signal — only dispatch batching
     may differ. *)
  let config = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let spec = Reference_apps.wifi_tx () in
  let run depth =
    let wl = Workload.validation [ (spec, 2) ] in
    Result.get_ok
      (Emulator.run_detailed
         ~engine:(Emulator.native_seeded ~reservation_depth:depth 1L)
         ~config ~workload:wl ())
  in
  let nr0, ni0 = run 0 in
  let nr2, ni2 = run 2 in
  check_counts nr0 nr2;
  Alcotest.(check bool) "same per-task PE assignments" true (by_task nr0 = by_task nr2);
  let chain = [ "CRC"; "SCRAMBLE"; "ENCODE"; "INTERLEAVE"; "MODULATE"; "PILOT"; "IFFT" ] in
  let per_instance_order (r : Stats.report) inst =
    List.filter_map
      (fun (t : Stats.task_record) ->
        if t.Stats.instance = inst then Some t.Stats.node else None)
      r.Stats.records
  in
  List.iter
    (fun inst ->
      Alcotest.(check (list string))
        (Printf.sprintf "depth 0: instance %d follows the chain" inst)
        chain (per_instance_order nr0 inst);
      Alcotest.(check (list string))
        (Printf.sprintf "depth 2: instance %d follows the chain" inst)
        chain (per_instance_order nr2 inst))
    [ 0; 1 ];
  Alcotest.(check bool) "depth 2 schedules" true (nr2.Stats.sched_invocations > 0);
  List.iter
    (fun inst ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d: same transmitted signal" inst)
        true
        (Store.get_cbuf ni0.(inst).Task.store "tx_time"
        = Store.get_cbuf ni2.(inst).Task.store "tx_time"))
    [ 0; 1 ]

(* ---------------- fault differential ---------------- *)

module Fault = Dssoc_fault.Fault

(* Fault draws are keyed on (task, attempt) alone, and a die@0 rule
   fires proactively before anything is dispatched, so the fault
   schedule is engine-independent by construction: both engines must
   reach the same verdict with the same completed-task multiset and
   the same retry counts, for every policy.  (PE-targeted
   probabilistic rules would not give this — which attempts fail would
   still agree, but on which PE an attempt runs is timing.) *)

let fault_plan () =
  Result.get_ok (Fault.of_spec ~seed:5L "fft2:die@0,*:transient:p=0.1:recover=0.2ms")

let completed_multiset (r : Stats.report) =
  List.sort compare
    (List.map
       (fun (t : Stats.task_record) -> (t.Stats.app, t.Stats.instance, t.Stats.node))
       r.Stats.records)

let test_fault_parity_across_policies () =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let wl () =
    Workload.validation
      [ (Reference_apps.range_detection (), 1); (Reference_apps.wifi_tx (), 1) ]
  in
  List.iter
    (fun policy ->
      let label = "faults/" ^ policy in
      let vr, vi =
        Result.get_ok
          (Emulator.run_detailed ~engine:det_engine ~policy ~fault:(fault_plan ()) ~config
             ~workload:(wl ()) ())
      in
      let nr, ni =
        Result.get_ok
          (Emulator.run_detailed ~engine:Emulator.native_default ~policy
             ~fault:(fault_plan ()) ~config ~workload:(wl ()) ())
      in
      Alcotest.(check string)
        (label ^ ": virtual degraded")
        "degraded"
        (Stats.verdict_name vr.Stats.verdict);
      Alcotest.(check string)
        (label ^ ": same verdict")
        (Stats.verdict_name vr.Stats.verdict)
        (Stats.verdict_name nr.Stats.verdict);
      Alcotest.(check bool)
        (label ^ ": same completed-task multiset")
        true
        (completed_multiset vr = completed_multiset nr);
      Alcotest.(check int)
        (label ^ ": same retry count")
        vr.Stats.resilience.Stats.task_retries nr.Stats.resilience.Stats.task_retries;
      Alcotest.(check int)
        (label ^ ": same fault count")
        vr.Stats.resilience.Stats.faults_injected nr.Stats.resilience.Stats.faults_injected;
      Alcotest.(check int)
        (label ^ ": one death each")
        vr.Stats.resilience.Stats.pe_deaths nr.Stats.resilience.Stats.pe_deaths;
      check_assignments_valid (label ^ "/virtual") config vi;
      check_assignments_valid (label ^ "/native") config ni;
      List.iter
        (fun (r : Stats.report) ->
          List.iter
            (fun (t : Stats.task_record) ->
              Alcotest.(check bool) (label ^ ": dead PE executed nothing") true
                (t.Stats.pe <> "fft2"))
            r.Stats.records)
        [ vr; nr ];
      check_stores_agree label vi ni)
    matrix_policies

(* ---------------- event-stream parity ---------------- *)

(* Timings, PE choices and event interleavings legitimately differ
   between the engines, but both run the same workload-manager
   protocol, so the task-lifecycle *multiset* — which (app, node,
   instance) triples were injected, became ready, were dispatched and
   completed — must be identical. *)

let lifecycle_multiset obs =
  List.filter_map
    (fun (e : Obs.event) ->
      match e.Obs.body with
      | Obs.Instance_injected { instance; app } -> Some ("injected", app, "", instance)
      | Obs.Task_ready { instance; app; node; _ } -> Some ("ready", app, node, instance)
      | Obs.Task_dispatched { instance; app; node; _ } -> Some ("dispatched", app, node, instance)
      | Obs.Task_completed { instance; app; node; _ } -> Some ("completed", app, node, instance)
      | _ -> None)
    (Obs.recorded_events obs)
  |> List.sort compare

let test_event_multiset_parity () =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let wl () =
    Workload.validation
      [ (Reference_apps.wifi_tx (), 1); (Reference_apps.range_detection (), 2) ]
  in
  let observe engine =
    let obs = Obs.make ~sink:(Obs.Sink.ring ()) () in
    ignore
      (Result.get_ok (Emulator.run_detailed ~engine ~config ~workload:(wl ()) ~obs ()));
    Alcotest.(check int) "nothing dropped" 0 (Obs.Sink.dropped (Obs.sink obs));
    lifecycle_multiset obs
  in
  let vm = observe det_engine in
  let nm = observe (Emulator.native_seeded 1L) in
  Alcotest.(check bool) "non-trivial stream" true (List.length vm > 10);
  Alcotest.(check int) "same lifecycle event count" (List.length vm) (List.length nm);
  Alcotest.(check bool) "same task-event multiset" true (vm = nm);
  (* internal consistency: within each engine, every task that became
     ready was dispatched and completed exactly once *)
  let project kind m =
    List.filter_map (fun (k, app, node, inst) -> if k = kind then Some (app, node, inst) else None) m
  in
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool) (name ^ ": ready = dispatched") true
        (project "ready" m = project "dispatched" m);
      Alcotest.(check bool) (name ^ ": ready = completed") true
        (project "ready" m = project "completed" m))
    [ ("virtual", vm); ("native", nm) ]

(* ---------------- compiled engine: exact replay ---------------- *)

(* The compiled engine's contract is stronger than the native one's:
   it must replay the virtual engine *byte for byte* — same
   records_csv, same report, same final stores — for every built-in
   policy, any reservation depth and any jitter.  The matrix below
   pins that contract on the reference mix, the fig9-style workload
   and a fig10 performance trace. *)

module Compiled = Dssoc_runtime.Compiled_engine
module Scheduler = Dssoc_runtime.Scheduler
module Engine_core = Dssoc_runtime.Engine_core
module Kernels = Dssoc_apps.Kernels
module Prng = Dssoc_util.Prng

let qtest = QCheck_alcotest.to_alcotest

let policy_of name = Result.get_ok (Scheduler.find name)

(* On divergence, show the first differing line rather than two
   multi-thousand-line blobs. *)
let check_lines_identical label what vtext ctext =
  if not (String.equal vtext ctext) then begin
    let vl = String.split_on_char '\n' vtext and cl = String.split_on_char '\n' ctext in
    let rec first i = function
      | a :: ta, b :: tb ->
        if String.equal a b then first (i + 1) (ta, tb)
        else Printf.sprintf "line %d: virtual %S vs compiled %S" i a b
      | a :: _, [] -> Printf.sprintf "line %d only in virtual: %S" i a
      | [], b :: _ -> Printf.sprintf "line %d only in compiled: %S" i b
      | [], [] -> "equal length, no differing line (?)"
    in
    Alcotest.failf "%s: %s diverges at %s" label what (first 0 (vl, cl))
  end

let check_csv_identical label vcsv ccsv = check_lines_identical label "records_csv" vcsv ccsv

let check_stores_identical label (vi : Task.instance array) (ci : Task.instance array) =
  Alcotest.(check int) (label ^ ": same instance count") (Array.length vi) (Array.length ci);
  Array.iteri
    (fun i (v : Task.instance) ->
      List.iter
        (fun var ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: instance %d var %s byte-identical" label i var)
            true
            (Bytes.equal (Store.get_raw v.Task.store var) (Store.get_raw ci.(i).Task.store var)))
        (Store.names v.Task.store))
    vi

let compiled_scenarios =
  [
    ( "reference-mix",
      (fun () -> Config.zcu102_cores_ffts ~cores:2 ~ffts:1),
      fun () ->
        Workload.validation
          [ (Reference_apps.range_detection (), 2); (Reference_apps.wifi_tx (), 2);
            (Reference_apps.wifi_rx (), 1) ] );
    ( "fig9-mix",
      (fun () -> Config.zcu102_cores_ffts ~cores:3 ~ffts:2),
      fun () ->
        Workload.validation
          [ (Reference_apps.pulse_doppler (), 1); (Reference_apps.range_detection (), 2);
            (Reference_apps.wifi_tx (), 2); (Reference_apps.wifi_rx (), 2) ] );
    ( "fig10-rate1.71",
      (fun () -> Config.zcu102_cores_ffts ~cores:3 ~ffts:2),
      fun () -> Workload.table2_workload ~rate:1.71 () );
  ]

let matrix_jitters = [ 0.0; 0.03 ]

let test_compiled_exact_replay () =
  List.iter
    (fun (scen, config_fn, wl_fn) ->
      let config = config_fn () in
      List.iter
        (fun policy ->
          (* One plan per (scenario, policy): params are run inputs,
             not compile inputs, so depth/jitter reuse the plan — the
             test doubles as a plan-reuse check. *)
          let plan =
            Compiled.compile ~config ~workload:(wl_fn ()) ~policy:(policy_of policy) ()
          in
          List.iter
            (fun depth ->
              List.iter
                (fun jitter ->
                  let label =
                    Printf.sprintf "%s/%s/depth%d/jitter%.2f" scen policy depth jitter
                  in
                  let params =
                    { Engine_core.seed = 7L; jitter; reservation_depth = depth }
                  in
                  let vr, vi =
                    Result.get_ok
                      (Emulator.run_detailed
                         ~engine:(Emulator.Virtual params)
                         ~policy ~config ~workload:(wl_fn ()) ())
                  in
                  let cr, ci = Compiled.run_detailed plan params in
                  check_csv_identical label (Stats.records_csv vr) (Stats.records_csv cr);
                  Alcotest.(check int) (label ^ ": same makespan") vr.Stats.makespan_ns
                    cr.Stats.makespan_ns;
                  Alcotest.(check int) (label ^ ": same WM overhead") vr.Stats.wm_overhead_ns
                    cr.Stats.wm_overhead_ns;
                  Alcotest.(check (float 1e-9)) (label ^ ": same busy energy")
                    (Stats.total_busy_energy_mj vr) (Stats.total_busy_energy_mj cr);
                  Alcotest.(check (float 1e-9)) (label ^ ": same total energy")
                    (Stats.total_energy_mj vr) (Stats.total_energy_mj cr);
                  Alcotest.(check bool) (label ^ ": same report") true (vr = cr);
                  check_stores_identical label vi ci)
                matrix_jitters)
            matrix_depths)
        matrix_policies)
    compiled_scenarios

let test_compiled_plan_purity () =
  (* A plan is immutable apart from scratch buffers: compiling twice
     and interleaving runs (including runs under different params in
     between) must not change what any given (plan, params) pair
     produces. *)
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let wl () =
    Workload.validation
      [ (Reference_apps.range_detection (), 2); (Reference_apps.wifi_tx (), 1) ]
  in
  let compile () = Compiled.compile ~config ~workload:(wl ()) ~policy:Scheduler.eft () in
  let p1 = compile () and p2 = compile () in
  let params = { Engine_core.seed = 3L; jitter = 0.03; reservation_depth = 1 } in
  let other = { Engine_core.seed = 9L; jitter = 0.01; reservation_depth = 0 } in
  let baseline = Stats.records_csv (Compiled.run p1 params) in
  Alcotest.(check string) "second plan replays the first" baseline
    (Stats.records_csv (Compiled.run p2 params));
  ignore (Compiled.run p1 other);
  ignore (Compiled.run p2 other);
  Alcotest.(check string) "plan 1 unchanged after interleaved runs" baseline
    (Stats.records_csv (Compiled.run p1 params));
  Alcotest.(check string) "plan 2 unchanged after interleaved runs" baseline
    (Stats.records_csv (Compiled.run p2 params))

let test_compiled_rejects_fault_plans () =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation [ (Reference_apps.wifi_tx (), 1) ] in
  Alcotest.(check bool) "compile raises Unsupported" true
    (try
       ignore
         (Compiled.compile ~fault:(fault_plan ()) ~config ~workload ~policy:Scheduler.frfs ());
       false
     with Compiled.Unsupported _ -> true);
  match
    Emulator.run
      ~engine:(Emulator.compiled_seeded 1L)
      ~fault:(fault_plan ()) ~config ~workload ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Emulator surfaced no error for fault + compiled"

(* ---------------- compiled engine: observability lowering ---------------- *)

module Analyze = Dssoc_obs.Analyze

(* Ring large enough that no scenario in the matrix drops events — a
   truncated stream would make the byte comparison vacuous. *)
let traced_obs () =
  Obs.make ~sink:(Obs.Sink.ring ~capacity:(1 lsl 18) ()) ~metrics:(Obs.Metrics.create ()) ()

let metrics_text obs =
  match Obs.metrics obs with
  | Some m -> Format.asprintf "%a" Obs.Metrics.pp m
  | None -> ""

(* The lowered hooks must make a traced compiled run indistinguishable
   from a traced virtual run: same event stream (byte-for-byte as
   JSONL), same metrics registry contents and registration order, on
   top of the untraced exact-replay contract. *)
let test_compiled_obs_parity () =
  List.iter
    (fun (scen, config_fn, wl_fn) ->
      let config = config_fn () in
      List.iter
        (fun policy ->
          let plan =
            Compiled.compile ~config ~workload:(wl_fn ()) ~policy:(policy_of policy) ()
          in
          List.iter
            (fun depth ->
              List.iter
                (fun jitter ->
                  let label =
                    Printf.sprintf "%s/%s/depth%d/jitter%.2f" scen policy depth jitter
                  in
                  let params =
                    { Engine_core.seed = 7L; jitter; reservation_depth = depth }
                  in
                  let vobs = traced_obs () and cobs = traced_obs () in
                  let vr =
                    Result.get_ok
                      (Emulator.run
                         ~engine:(Emulator.Virtual params)
                         ~policy ~obs:vobs ~config ~workload:(wl_fn ()) ())
                  in
                  let cr = Compiled.run ~obs:cobs plan params in
                  Alcotest.(check int) (label ^ ": no dropped events") 0
                    (Obs.Sink.dropped (Obs.sink vobs));
                  check_lines_identical label "event JSONL"
                    (Obs.to_jsonl (Obs.recorded_events vobs))
                    (Obs.to_jsonl (Obs.recorded_events cobs));
                  check_lines_identical label "metrics" (metrics_text vobs) (metrics_text cobs);
                  check_csv_identical label (Stats.records_csv vr) (Stats.records_csv cr);
                  (* and the shared analytics layer sees the same run *)
                  let cp =
                    Analyze.critical_path (Analyze.of_events (Obs.recorded_events cobs))
                  in
                  Alcotest.(check int) (label ^ ": crit path = makespan") cr.Stats.makespan_ns
                    cp.Analyze.cp_length_ns)
                matrix_jitters)
            matrix_depths)
        matrix_policies)
    compiled_scenarios

(* ---------------- compiled engine: random-DAG properties ---------------- *)

(* The reference apps exercise a handful of DAG shapes; the properties
   below throw randomly wired DAGs at the compiler so the CSR
   adjacency lowering, the ready bookkeeping and the policy loops are
   checked on shapes nobody hand-picked. *)

let () =
  Kernels.register_object "qdag.so"
    [
      ( "bump",
        fun store args ->
          (* One shared accumulator: every node execution adds its
             first argument's length-independent constant, so the
             final store is a function of *which* tasks ran, not of
             scheduling order. *)
          ignore args;
          Store.set_i32 store "acc" (Store.get_i32 store "acc" + 1) );
    ]

(* Deterministically derive a random DAG from [seed]: n nodes, each
   wired to a random subset of its predecessors (guaranteeing at least
   one edge from the previous node half the time), each supported on
   cpu and — with probability 1/2 — also on the FFT accelerator. *)
let random_dag seed =
  let prng = Prng.create ~seed:(Int64.of_int (0x5EED + seed)) in
  let n = 3 + Prng.int prng 8 in
  let nodes =
    List.init n (fun i ->
        let preds =
          List.filteri (fun j _ -> j < i && Prng.bool prng) (List.init n (fun j -> j))
          |> List.map (Printf.sprintf "n%d")
        in
        let preds =
          if i > 0 && preds = [] && Prng.bool prng then [ Printf.sprintf "n%d" (i - 1) ]
          else preds
        in
        let platforms =
          { App_spec.platform = "cpu"; runfunc = "bump"; shared_object = None; cost_us = None }
          ::
          (if Prng.bool prng then
             [ { App_spec.platform = "fft"; runfunc = "bump"; shared_object = None;
                 cost_us = None } ]
           else [])
        in
        {
          App_spec.node_name = Printf.sprintf "n%d" i;
          arguments = [ "acc" ];
          predecessors = preds;
          successors = [];
          platforms;
          kernel_class = "generic";
          size = 1 + Prng.int prng 64;
          bytes_in = 0;
          bytes_out = 0;
        })
  in
  App_spec.of_edges ~app_name:(Printf.sprintf "qdag%d" seed) ~shared_object:"qdag.so"
    ~variables:[ ("acc", { Store.bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = [] }) ]
    ~nodes

let qcheck_compiled_respects_adjacency =
  QCheck.Test.make ~name:"compiled run respects random-DAG adjacency" ~count:30
    QCheck.(make Gen.(int_range 0 10_000))
    (fun seed ->
      let spec = random_dag seed in
      let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
      let plan =
        Compiled.compile ~config
          ~workload:(Workload.validation [ (spec, 2) ])
          ~policy:Scheduler.frfs ()
      in
      let r, insts =
        Compiled.run_detailed plan { Engine_core.seed = 1L; jitter = 0.0; reservation_depth = 0 }
      in
      (* every task completed exactly once... *)
      let n = List.length spec.App_spec.nodes in
      if List.length r.Stats.records <> 2 * n then
        QCheck.Test.fail_reportf "expected %d records, got %d" (2 * n)
          (List.length r.Stats.records);
      (* ...the kernel ran once per task (adjacency lost no node)... *)
      Array.iter
        (fun (inst : Task.instance) ->
          if Store.get_i32 inst.Task.store "acc" <> n then
            QCheck.Test.fail_reportf "instance ran %d of %d kernels"
              (Store.get_i32 inst.Task.store "acc") n)
        insts;
      (* ...and no task was dispatched before all its predecessors
         completed: the CSR lowering round-trips the DAG. *)
      let completed = Hashtbl.create 16 in
      List.iter
        (fun (t : Stats.task_record) ->
          Hashtbl.replace completed (t.Stats.instance, t.Stats.node) t.Stats.completed_ns)
        r.Stats.records;
      List.for_all
        (fun (t : Stats.task_record) ->
          let node = App_spec.node spec t.Stats.node in
          List.for_all
            (fun pred ->
              match Hashtbl.find_opt completed (t.Stats.instance, pred) with
              | Some c -> c <= t.Stats.dispatched_ns
              | None -> false)
            node.App_spec.predecessors)
        r.Stats.records)

let qcheck_compiled_replays_virtual =
  QCheck.Test.make ~name:"compiled replays virtual on random DAGs" ~count:30
    QCheck.(make Gen.(pair (int_range 0 10_000) (pair (int_range 0 4) (int_range 0 2))))
    (fun (seed, (policy_ix, depth)) ->
      let spec = random_dag seed in
      let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
      let policy = List.nth matrix_policies policy_ix in
      let wl () = Workload.validation [ (spec, 2) ] in
      let params =
        { Engine_core.seed = Int64.of_int (seed + 1); jitter = 0.03; reservation_depth = depth }
      in
      let vr =
        Result.get_ok
          (Emulator.run ~engine:(Emulator.Virtual params) ~policy ~config ~workload:(wl ()) ())
      in
      let plan =
        Compiled.compile ~config ~workload:(wl ()) ~policy:(policy_of policy) ()
      in
      let cr = Compiled.run plan params in
      if not (String.equal (Stats.records_csv vr) (Stats.records_csv cr)) then
        QCheck.Test.fail_reportf "records diverge for seed %d policy %s depth %d" seed policy
          depth;
      vr.Stats.makespan_ns = cr.Stats.makespan_ns && completed_multiset vr = completed_multiset cr)

let qcheck_crit_path_equals_makespan =
  (* The critical path's gaps and services partition [0, makespan] for
     any realized schedule — pinned on random DAGs through both
     engines, whose traced streams must also agree byte-for-byte. *)
  QCheck.Test.make ~name:"critical-path length = makespan on random DAGs (both engines)"
    ~count:30
    QCheck.(make Gen.(pair (int_range 0 10_000) (pair (int_range 0 4) (int_range 0 2))))
    (fun (seed, (policy_ix, depth)) ->
      let spec = random_dag seed in
      let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
      let policy = List.nth matrix_policies policy_ix in
      let wl () = Workload.validation [ (spec, 2) ] in
      let params =
        { Engine_core.seed = Int64.of_int (seed + 1); jitter = 0.03; reservation_depth = depth }
      in
      let vobs = traced_obs () and cobs = traced_obs () in
      let vr =
        Result.get_ok
          (Emulator.run ~engine:(Emulator.Virtual params) ~policy ~obs:vobs ~config
             ~workload:(wl ()) ())
      in
      let plan = Compiled.compile ~config ~workload:(wl ()) ~policy:(policy_of policy) () in
      let cr = Compiled.run ~obs:cobs plan params in
      let cp_len obs =
        (Analyze.critical_path (Analyze.of_events (Obs.recorded_events obs))).Analyze.cp_length_ns
      in
      if cp_len vobs <> vr.Stats.makespan_ns then
        QCheck.Test.fail_reportf "virtual: crit path %d <> makespan %d (seed %d %s depth %d)"
          (cp_len vobs) vr.Stats.makespan_ns seed policy depth;
      if cp_len cobs <> cr.Stats.makespan_ns then
        QCheck.Test.fail_reportf "compiled: crit path %d <> makespan %d (seed %d %s depth %d)"
          (cp_len cobs) cr.Stats.makespan_ns seed policy depth;
      String.equal
        (Obs.to_jsonl (Obs.recorded_events vobs))
        (Obs.to_jsonl (Obs.recorded_events cobs)))

let qcheck_compiled_rejects_faults =
  QCheck.Test.make ~name:"compile rejects fault plans on random DAGs" ~count:10
    QCheck.(make Gen.(int_range 0 10_000))
    (fun seed ->
      let spec = random_dag seed in
      let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
      try
        ignore
          (Compiled.compile ~fault:(fault_plan ()) ~config
             ~workload:(Workload.validation [ (spec, 1) ])
             ~policy:Scheduler.frfs ());
        false
      with Compiled.Unsupported _ -> true)

let () =
  Alcotest.run "diff_engines"
    [
      ( "virtual vs native",
        [
          Alcotest.test_case "linear chain parity" `Slow test_chain_parity;
          Alcotest.test_case "DAG parity on one PE" `Slow test_dag_parity_single_pe;
          Alcotest.test_case "multi-instance chain parity" `Slow test_multi_instance_parity;
          Alcotest.test_case "functional agreement matrix" `Slow test_functional_agreement_matrix;
        ] );
      ( "reservation queues",
        [
          Alcotest.test_case "chain parity at depth 1 and 3" `Slow test_reservation_chain_parity;
          Alcotest.test_case "multi-instance parity at depth 1 and 3" `Slow
            test_reservation_multi_instance_parity;
          Alcotest.test_case "batching preserves decisions" `Slow
            test_reservation_fewer_invocations_same_decisions;
          Alcotest.test_case "native reservation-depth differential" `Slow
            test_native_reservation_depth_differential;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "fault parity across the policy matrix" `Slow
            test_fault_parity_across_policies;
        ] );
      ( "event streams",
        [ Alcotest.test_case "task-lifecycle multiset parity" `Slow test_event_multiset_parity ] );
      ( "virtual vs compiled",
        [
          Alcotest.test_case "exact-replay matrix" `Slow test_compiled_exact_replay;
          Alcotest.test_case "plan purity under interleaved runs" `Quick
            test_compiled_plan_purity;
          Alcotest.test_case "fault plans rejected" `Quick test_compiled_rejects_fault_plans;
          qtest qcheck_compiled_respects_adjacency;
          qtest qcheck_compiled_replays_virtual;
          qtest qcheck_compiled_rejects_faults;
        ] );
      ( "observability lowering",
        [
          Alcotest.test_case "traced-replay matrix (events + metrics)" `Slow
            test_compiled_obs_parity;
          qtest qcheck_crit_path_equals_makespan;
        ] );
    ]
