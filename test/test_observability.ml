(* Observability regression tests: hardened Gantt rendering edge cases
   plus golden outputs pinning [Stats.records_csv] and
   [Stats.chrome_trace] for a fixed seeded run, so any change to the
   exporter formats (column order, units, field names) is caught
   deliberately rather than discovered by downstream tooling. *)

module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Config = Dssoc_soc.Config
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module Json = Dssoc_json.Json
module Obs = Dssoc_obs.Obs
module Quantile = Dssoc_stats.Quantile

(* ---------------------- hand-built reports for Gantt edges ---------------------- *)

let mk_record ~app ~node ~pe ~d ~c =
  {
    Stats.app;
    instance = 0;
    node;
    pe;
    ready_ns = 0;
    dispatched_ns = d;
    completed_ns = c;
  }

let mk_usage label =
  {
    Stats.pe_label = label;
    pe_kind = "cpu";
    busy_ns = 0;
    tasks_run = 0;
    busy_energy_mj = 0.0;
    energy_mj = 0.0;
  }

let mk_report ?(makespan = 1_000_000) records pe_labels =
  {
    Stats.host_name = "ZCU102";
    config_label = "test";
    policy_name = "FRFS";
    makespan_ns = makespan;
    job_count = List.length records;
    task_count = List.length records;
    pe_usage = List.map mk_usage pe_labels;
    sched_invocations = 0;
    sched_ns = 0;
    wm_overhead_ns = 0;
    records;
    app_stats = [];
    verdict = Stats.Completed;
    resilience = Stats.no_faults;
    fabric = Stats.no_fabric;
  }

let contains ~needle haystack =
  let n = String.length needle in
  let rec go i = i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_gantt_zero_width_span () =
  (* An instantaneous task at the very end of the makespan used to
     produce an empty (or reversed) fill range; it must render exactly
     one visible cell and never raise. *)
  let r = mk_report [ mk_record ~app:"blip" ~node:"N" ~pe:"cpu0" ~d:1_000_000 ~c:1_000_000 ] [ "cpu0" ] in
  let g = Stats.gantt ~width:40 r in
  Alcotest.(check bool) "letter rendered" true (contains ~needle:"a" g);
  let row = List.find (fun l -> contains ~needle:"cpu0" l) (String.split_on_char '\n' g) in
  Alcotest.(check bool) "span visible in the cpu0 row" true (contains ~needle:"a|" row)

let test_gantt_degenerate_width () =
  (* width 0 (or negative) is clamped to a single column instead of
     crashing on Bytes.set row (-1). *)
  List.iter
    (fun width ->
      let r = mk_report [ mk_record ~app:"x" ~node:"N" ~pe:"cpu0" ~d:0 ~c:500 ] [ "cpu0" ] in
      let g = Stats.gantt ~width r in
      Alcotest.(check bool) "renders non-empty" true (String.length g > 0))
    [ 0; -5; 1 ]

let test_gantt_zero_makespan () =
  let r = mk_report ~makespan:0 [ mk_record ~app:"x" ~node:"N" ~pe:"cpu0" ~d:0 ~c:0 ] [ "cpu0" ] in
  let g = Stats.gantt ~width:20 r in
  Alcotest.(check bool) "renders" true (String.length g > 0)

let test_gantt_many_apps () =
  (* 30 distinct applications exhaust a-z; the 27th app must continue
     into upper case rather than rendering '?' for every extra app. *)
  let apps = List.init 30 (fun i -> Printf.sprintf "app%02d" i) in
  let records =
    List.mapi (fun i app -> mk_record ~app ~node:"N" ~pe:"cpu0" ~d:(i * 1000) ~c:((i * 1000) + 900)) apps
  in
  let r = mk_report ~makespan:30_000 records [ "cpu0" ] in
  let g = Stats.gantt ~width:120 r in
  Alcotest.(check bool) "no unknown-letter fallback" false (contains ~needle:"?" g);
  Alcotest.(check bool) "27th app maps to upper case" true (contains ~needle:"A = app26" g);
  Alcotest.(check bool) "30th app present in legend" true (contains ~needle:"D = app29" g)

(* ---------------------- golden exporter outputs ---------------------- *)

(* Fixed scenario: 1x wifi_tx on 2Core+1FFT, deterministic virtual
   engine (jitter 0, seed 1).  Regenerate the golden strings with
   [dune exec goldengen/gen.exe] equivalents if the execution model
   deliberately changes, and mention the change in CHANGES.md. *)
let golden_run () =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation [ (Reference_apps.wifi_tx (), 1) ] in
  Emulator.run_exn ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L) ~config ~workload ()

let golden_csv =
  "app,instance,node,pe,ready_ns,dispatched_ns,completed_ns\n\
     wifi_tx,0,CRC,cpu0,1050,5250,9042\n\
     wifi_tx,0,SCRAMBLE,cpu0,10092,14292,19172\n\
     wifi_tx,0,ENCODE,cpu0,20222,24422,34622\n\
     wifi_tx,0,INTERLEAVE,cpu0,35672,39872,47584\n\
     wifi_tx,0,MODULATE,cpu0,48634,52834,62474\n\
     wifi_tx,0,PILOT,cpu0,63524,67724,71254\n\
     wifi_tx,0,IFFT,cpu0,72304,76504,91944\n\
     "

let golden_trace =
  "{\n  \"traceEvents\": [\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"name\": \"cpu0\"\n      }\n    },\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 1,\n      \"args\": {\n        \"name\": \"cpu1\"\n      }\n    },\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 2,\n      \"args\": {\n        \"name\": \"fft2\"\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:CRC\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 5.25,\n      \"dur\": 3.7919999999999998,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 1.05\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:SCRAMBLE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 14.292,\n      \"dur\": 4.8799999999999999,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 10.092000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:ENCODE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 24.422000000000001,\n      \"dur\": 10.199999999999999,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 20.222000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:INTERLEAVE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 39.872,\n      \"dur\": 7.7119999999999997,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 35.671999999999997\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:MODULATE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 52.834000000000003,\n      \"dur\": 9.6400000000000006,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 48.634\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:PILOT\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 67.724000000000004,\n      \"dur\": 3.5299999999999998,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 63.524000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:IFFT\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 76.504000000000005,\n      \"dur\": 15.44,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 72.304000000000002\n      }\n    }\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n    \"config\": \"2Core+1FFT\",\n    \"policy\": \"FRFS\",\n    \"host\": \"ZCU102\"\n  }\n}"

let test_records_csv_golden () =
  Alcotest.(check string) "records_csv pinned" golden_csv (Stats.records_csv (golden_run ()))

let test_compiled_records_csv_golden () =
  (* The compiled engine must replay the golden scenario byte for
     byte, so it is pinned against the *same* literal as the virtual
     engine — one golden, two engines. *)
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation [ (Reference_apps.wifi_tx (), 1) ] in
  let r =
    Emulator.run_exn ~engine:(Emulator.compiled_seeded ~jitter:0.0 1L) ~config ~workload ()
  in
  Alcotest.(check string) "compiled records_csv pinned" golden_csv (Stats.records_csv r)

let test_chrome_trace_golden () =
  Alcotest.(check string) "chrome_trace pinned" golden_trace
    (Json.to_string (Stats.chrome_trace (golden_run ())))

let test_chrome_trace_roundtrip () =
  let json = Stats.chrome_trace (golden_run ()) in
  Alcotest.(check bool) "parses back" true (Json.parse (Json.to_string json) = Ok json)

(* ---------------------- ring sink ---------------------- *)

let tick i = Obs.Wm_tick { completions = i; injected = 0 }

let test_ring_retention () =
  let s = Obs.Sink.ring ~capacity:4 () in
  Alcotest.(check bool) "not null" false (Obs.Sink.is_null s);
  Alcotest.(check int) "empty" 0 (Obs.Sink.length s);
  for i = 0 to 2 do
    Obs.Sink.emit s i (tick i)
  done;
  Alcotest.(check int) "three stored" 3 (Obs.Sink.length s);
  Alcotest.(check int) "none dropped" 0 (Obs.Sink.dropped s);
  Alcotest.(check (list int)) "oldest first" [ 0; 1; 2 ]
    (List.map (fun e -> e.Obs.t_ns) (Obs.Sink.events s))

let test_ring_wrap () =
  let s = Obs.Sink.ring ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Sink.emit s i (tick i)
  done;
  Alcotest.(check int) "capacity retained" 4 (Obs.Sink.length s);
  Alcotest.(check int) "total counts everything" 10 (Obs.Sink.total s);
  Alcotest.(check int) "overwritten counted as dropped" 6 (Obs.Sink.dropped s);
  Alcotest.(check (list int)) "last four, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Obs.t_ns) (Obs.Sink.events s));
  (* bodies survive the wrap with their payloads intact *)
  List.iter2
    (fun e i ->
      match e.Obs.body with
      | Obs.Wm_tick { completions; _ } -> Alcotest.(check int) "payload" i completions
      | _ -> Alcotest.fail "unexpected body")
    (Obs.Sink.events s) [ 6; 7; 8; 9 ]

let test_ring_bad_capacity () =
  Alcotest.check_raises "capacity 0 rejected" (Invalid_argument "Obs.Sink.ring: capacity must be positive")
    (fun () -> ignore (Obs.Sink.ring ~capacity:0 ()))

(* ---------------------- metrics registry ---------------------- *)

let test_histogram_matches_quantile () =
  (* The histogram summary must agree with Dssoc_stats.Quantile applied
     to the raw samples — the registry stores, Quantile computes. *)
  let samples = [| 3.2; 1.0; 4.4; 1.5; 9.6; 2.7; 5.3; 5.8 |] in
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  Array.iter (Obs.Metrics.observe h) samples;
  Alcotest.(check int) "count" (Array.length samples) (Obs.Metrics.histogram_count h);
  let got name f expect =
    match f with
    | None -> Alcotest.failf "%s: no samples" name
    | Some v -> Alcotest.(check (float 1e-9)) name expect v
  in
  got "mean" (Obs.Metrics.histogram_mean h) (Quantile.mean samples);
  got "p50" (Obs.Metrics.histogram_quantile h 0.5) (Quantile.quantile samples 0.5);
  got "p95" (Obs.Metrics.histogram_quantile h 0.95) (Quantile.quantile samples 0.95)

let test_gauge_series_collapses_same_timestamp () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "depth" in
  Obs.Metrics.set g ~t_ns:10 1;
  Obs.Metrics.set g ~t_ns:10 3;
  Obs.Metrics.set g ~t_ns:20 2;
  Alcotest.(check (list (pair int int))) "step series" [ (10, 3); (20, 2) ]
    (Obs.Metrics.gauge_series g);
  Alcotest.(check int) "max sees collapsed peak" 3 (Obs.Metrics.gauge_max g);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Obs.Metrics.counter: depth registered with another kind")
    (fun () -> ignore (Obs.Metrics.counter m "depth"))

(* ---------------------- golden JSONL event log ---------------------- *)

let observed_run workload_apps =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation workload_apps in
  let obs = Obs.make ~sink:(Obs.Sink.ring ()) ~metrics:(Obs.Metrics.create ()) () in
  let r =
    Emulator.run_exn ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L) ~config ~workload ~obs ()
  in
  (r, obs)

(* Golden for the same fixed scenario as [golden_csv]/[golden_trace];
   regenerate with [dune exec goldengen/gen.exe]. *)
let golden_jsonl =
  String.concat "\n"
    [
      {|{"t":1050,"ev":"instance_injected","instance":0,"app":"wifi_tx"}|};
      {|{"t":1050,"ev":"task_ready","task":0,"instance":0,"app":"wifi_tx","node":"CRC"}|};
      {|{"t":3450,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":5250,"ev":"task_dispatched","task":0,"instance":0,"app":"wifi_tx","node":"CRC","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":5250,"ev":"wm_tick","completions":0,"injected":1}|};
      {|{"t":9042,"ev":"task_completed","task":0,"instance":0,"app":"wifi_tx","node":"CRC","pe":"cpu0","pe_index":0,"service_ns":3792}|};
      {|{"t":10092,"ev":"task_ready","task":1,"instance":0,"app":"wifi_tx","node":"SCRAMBLE"}|};
      {|{"t":12492,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":14292,"ev":"task_dispatched","task":1,"instance":0,"app":"wifi_tx","node":"SCRAMBLE","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":14292,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":19172,"ev":"task_completed","task":1,"instance":0,"app":"wifi_tx","node":"SCRAMBLE","pe":"cpu0","pe_index":0,"service_ns":4880}|};
      {|{"t":20222,"ev":"task_ready","task":2,"instance":0,"app":"wifi_tx","node":"ENCODE"}|};
      {|{"t":22622,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":24422,"ev":"task_dispatched","task":2,"instance":0,"app":"wifi_tx","node":"ENCODE","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":24422,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":34622,"ev":"task_completed","task":2,"instance":0,"app":"wifi_tx","node":"ENCODE","pe":"cpu0","pe_index":0,"service_ns":10200}|};
      {|{"t":35672,"ev":"task_ready","task":3,"instance":0,"app":"wifi_tx","node":"INTERLEAVE"}|};
      {|{"t":38072,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":39872,"ev":"task_dispatched","task":3,"instance":0,"app":"wifi_tx","node":"INTERLEAVE","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":39872,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":47584,"ev":"task_completed","task":3,"instance":0,"app":"wifi_tx","node":"INTERLEAVE","pe":"cpu0","pe_index":0,"service_ns":7712}|};
      {|{"t":48634,"ev":"task_ready","task":4,"instance":0,"app":"wifi_tx","node":"MODULATE"}|};
      {|{"t":51034,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":52834,"ev":"task_dispatched","task":4,"instance":0,"app":"wifi_tx","node":"MODULATE","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":52834,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":62474,"ev":"task_completed","task":4,"instance":0,"app":"wifi_tx","node":"MODULATE","pe":"cpu0","pe_index":0,"service_ns":9640}|};
      {|{"t":63524,"ev":"task_ready","task":5,"instance":0,"app":"wifi_tx","node":"PILOT"}|};
      {|{"t":65924,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":67724,"ev":"task_dispatched","task":5,"instance":0,"app":"wifi_tx","node":"PILOT","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":67724,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":71254,"ev":"task_completed","task":5,"instance":0,"app":"wifi_tx","node":"PILOT","pe":"cpu0","pe_index":0,"service_ns":3530}|};
      {|{"t":72304,"ev":"task_ready","task":6,"instance":0,"app":"wifi_tx","node":"IFFT"}|};
      {|{"t":74704,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":76504,"ev":"task_dispatched","task":6,"instance":0,"app":"wifi_tx","node":"IFFT","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":76504,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":91944,"ev":"task_completed","task":6,"instance":0,"app":"wifi_tx","node":"IFFT","pe":"cpu0","pe_index":0,"service_ns":15440}|};
      {|{"t":92994,"ev":"wm_tick","completions":1,"injected":0}|};
      "";
    ]

let test_jsonl_golden () =
  let _, obs = observed_run [ (Reference_apps.wifi_tx (), 1) ] in
  Alcotest.(check string) "event log pinned" golden_jsonl
    (Obs.to_jsonl (Obs.recorded_events obs));
  Alcotest.(check int) "nothing dropped" 0 (Obs.Sink.dropped (Obs.sink obs))

let test_jsonl_parses_and_deterministic () =
  (* A workload that also exercises the FFT accelerator (phase events). *)
  let apps = [ (Reference_apps.wifi_tx (), 1); (Reference_apps.range_detection (), 1) ] in
  let _, obs1 = observed_run apps in
  let _, obs2 = observed_run apps in
  let jsonl = Obs.to_jsonl (Obs.recorded_events obs1) in
  Alcotest.(check string) "bit-identical across identical runs" jsonl
    (Obs.to_jsonl (Obs.recorded_events obs2));
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl) in
  Alcotest.(check bool) "non-trivial log" true (List.length lines > 20);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Obj members) ->
          Alcotest.(check bool) "has t" true (List.mem_assoc "t" members);
          Alcotest.(check bool) "has ev" true (List.mem_assoc "ev" members)
      | Ok _ -> Alcotest.failf "line is not an object: %s" line
      | Error e -> Alcotest.failf "unparseable line %s: %s" line (Json.error_to_string e))
    lines;
  let has_ev name =
    List.exists (fun l -> contains ~needle:(Printf.sprintf "\"ev\":%S" name) l) lines
  in
  List.iter
    (fun name -> Alcotest.(check bool) name true (has_ev name))
    [ "instance_injected"; "task_ready"; "task_dispatched"; "task_completed"; "sched"; "phase"; "wm_tick" ]

(* ---------------------- chrome trace with observation data ---------------------- *)

let trace_events json =
  match Json.member "traceEvents" json with
  | Ok (Json.List evs) -> evs
  | _ -> Alcotest.fail "traceEvents missing"

let str_member name ev = match Json.member name ev with Ok (Json.String s) -> Some s | _ -> None

let test_chrome_trace_with_obs () =
  let apps = [ (Reference_apps.wifi_tx (), 1); (Reference_apps.range_detection (), 1) ] in
  let r, obs = observed_run apps in
  let json = Stats.chrome_trace ~obs r in
  (* round-trips through the parser *)
  Alcotest.(check bool) "parses back" true (Json.parse (Json.to_string json) = Ok json);
  let evs = trace_events json in
  let phases ph =
    List.exists (fun e -> str_member "ph" e = Some "X" && str_member "name" e = Some ph) evs
  in
  List.iter
    (fun ph -> Alcotest.(check bool) ("DMA sub-span " ^ ph) true (phases ph))
    [ "dma_in"; "compute"; "dma_out" ];
  let counter_names =
    List.filter_map (fun e -> if str_member "ph" e = Some "C" then str_member "name" e else None) evs
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "ready-queue counter track" true (List.mem "ready_queue_depth" counter_names);
  Alcotest.(check bool) "in-flight counter track" true (List.mem "in_flight_tasks" counter_names);
  Alcotest.(check bool) ">= 2 counter tracks" true (List.length counter_names >= 2);
  (* the critical-path highlight rides on a dedicated named thread *)
  let crit_spans =
    List.filter
      (fun e ->
        str_member "ph" e = Some "X"
        && (match Json.member "cat" e with Ok (Json.String "crit") -> true | _ -> false))
      evs
  in
  Alcotest.(check bool) "critical-path spans present" true (crit_spans <> []);
  Alcotest.(check bool) "critical-path thread named" true
    (List.exists
       (fun e ->
         str_member "name" e = Some "thread_name"
         &&
         match Json.member "args" e with
         | Ok (Json.Obj args) -> List.assoc_opt "name" args = Some (Json.str "critical path")
         | _ -> false)
       evs);
  List.iter
    (fun e ->
      match Json.member "args" e with
      | Ok (Json.Obj args) ->
          Alcotest.(check bool) "crit span carries edge + slack" true
            (List.mem_assoc "edge" args && List.mem_assoc "slack_us" args)
      | _ -> Alcotest.fail "crit span without args")
    crit_spans;
  (* without ~obs the output must be exactly the pre-observability trace *)
  Alcotest.(check bool) "no counter events without obs" true
    (List.for_all
       (fun e -> str_member "ph" e <> Some "C")
       (trace_events (Stats.chrome_trace r)))

(* ---------------------- event JSON round-trip / streaming writer ---------------------- *)

let sample_events =
  [
    { Obs.t_ns = 0; body = Obs.Instance_injected { instance = 3; app = "wifi_rx" } };
    { Obs.t_ns = 10; body = Obs.Task_ready { task = 7; instance = 3; app = "wifi_rx"; node = "FFT" } };
    {
      Obs.t_ns = 20;
      body =
        Obs.Task_dispatched
          { task = 7; instance = 3; app = "wifi_rx"; node = "FFT"; pe = "fft1"; pe_index = 4;
            wait_ns = 10 };
    };
    {
      Obs.t_ns = 25;
      body = Obs.Phase { task = 7; pe_index = 4; phase = Obs.Dma_in; start_ns = 20; dur_ns = 5 };
    };
    { Obs.t_ns = 30; body = Obs.Stream_stalled { pe_index = 4; bytes = 4096; queued = 2 } };
    {
      Obs.t_ns = 40;
      body = Obs.Stream_admitted { pe_index = 4; bytes = 4096; stall_ns = 10; inflight = 1 };
    };
    { Obs.t_ns = 50; body = Obs.Reservation_enqueued { pe_index = 4; depth = 1 } };
    { Obs.t_ns = 55; body = Obs.Reservation_popped { pe_index = 4; depth = 0 } };
    {
      Obs.t_ns = 60;
      body =
        Obs.Sched_invoked { ready = 2; examined = 2; ops = 10; cost_ns = 2000; assigned = 1 };
    };
    {
      Obs.t_ns = 70;
      body =
        Obs.Task_completed
          { task = 7; instance = 3; app = "wifi_rx"; node = "FFT"; pe = "fft1"; pe_index = 4;
            service_ns = 50 };
    };
    {
      Obs.t_ns = 80;
      body =
        Obs.Fault_injected { task = 7; pe = "fft1"; pe_index = 4; fault = "transient"; attempt = 1 };
    };
    {
      Obs.t_ns = 85;
      body =
        Obs.Task_failed
          { task = 7; instance = 3; app = "wifi_rx"; node = "FFT"; pe = "fft1"; pe_index = 4;
            fault = "transient"; attempt = 1 };
    };
    {
      Obs.t_ns = 90;
      body =
        Obs.Task_retried
          { task = 7; instance = 3; app = "wifi_rx"; node = "FFT"; attempt = 1; backoff_ns = 100 };
    };
    { Obs.t_ns = 95; body = Obs.Pe_quarantined { pe = "fft1"; pe_index = 4; until_ns = 500; permanent = false } };
    { Obs.t_ns = 99; body = Obs.Pe_recovered { pe = "fft1"; pe_index = 4 } };
    { Obs.t_ns = 100; body = Obs.Wm_tick { completions = 1; injected = 0 } };
    { Obs.t_ns = 110; body = Obs.Tenant_admitted { tenant = "gold"; instance = 12; queue_depth = 3 } };
    { Obs.t_ns = 115; body = Obs.Tenant_shed { tenant = "bulk"; instance = 13; queue_depth = 8 } };
    { Obs.t_ns = 120; body = Obs.Instance_timed_out { tenant = "bulk"; instance = 9; age_ns = 5000 } };
    { Obs.t_ns = 130; body = Obs.Checkpoint_written { path = "/tmp/ck.json"; instances_done = 14 } };
  ]

let test_event_json_roundtrip () =
  (* Every constructor round-trips, plus everything a real traced run
     emits (reloading an --events file must lose nothing). *)
  let _, obs = observed_run [ (Reference_apps.wifi_tx (), 1); (Reference_apps.range_detection (), 1) ] in
  List.iter
    (fun (e : Obs.event) ->
      match Obs.event_of_json (Obs.event_to_json e) with
      | Ok e' -> Alcotest.(check bool) "event round-trips" true (e = e')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    (sample_events @ Obs.recorded_events obs);
  (match Obs.event_of_json (Json.obj [ ("t", Json.int 1) ]) with
  | Ok _ -> Alcotest.fail "missing ev accepted"
  | Error _ -> ());
  match Obs.event_of_json (Json.obj [ ("t", Json.int 1); ("ev", Json.str "no_such_event") ]) with
  | Ok _ -> Alcotest.fail "unknown ev accepted"
  | Error _ -> ()

let test_output_jsonl_streams_same_bytes () =
  (* The streaming writer must be a drop-in for [to_jsonl]: same golden
     bytes, straight to the channel. *)
  let _, obs = observed_run [ (Reference_apps.wifi_tx (), 1) ] in
  let events = Obs.recorded_events obs in
  let path = Filename.temp_file "dssoc_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Obs.output_jsonl oc events);
      let written = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) "streamed bytes = to_jsonl" (Obs.to_jsonl events) written;
      Alcotest.(check string) "golden bytes" golden_jsonl written)

(* ---------------------- analysis: hand-built schedules ---------------------- *)

module Analyze = Dssoc_obs.Analyze

(* Three tasks of one instance on one CPU:
     A: ready 0,   dispatched 0,   completed 100   (chain start)
     B: ready 0,   dispatched 120, completed 270   (waited for cpu0: resource)
     C: ready 270, dispatched 270, completed 420   (ready when B completed: dependency)
   and the WM tick that observed the last completion at 440. *)
let handbuilt_cpu_events =
  let t task node = (task, node) in
  let ready t_ns (task, node) =
    { Obs.t_ns; body = Obs.Task_ready { task; instance = 0; app = "app"; node } }
  in
  let disp t_ns (task, node) wait_ns =
    {
      Obs.t_ns;
      body =
        Obs.Task_dispatched
          { task; instance = 0; app = "app"; node; pe = "cpu0"; pe_index = 0; wait_ns };
    }
  in
  let comp t_ns (task, node) service_ns =
    {
      Obs.t_ns;
      body =
        Obs.Task_completed
          { task; instance = 0; app = "app"; node; pe = "cpu0"; pe_index = 0; service_ns };
    }
  in
  [
    { Obs.t_ns = 0; body = Obs.Instance_injected { instance = 0; app = "app" } };
    ready 0 (t 0 "A");
    disp 0 (t 0 "A") 0;
    ready 0 (t 1 "B");
    comp 100 (t 0 "A") 100;
    disp 120 (t 1 "B") 120;
    comp 270 (t 1 "B") 150;
    ready 270 (t 2 "C");
    disp 270 (t 2 "C") 0;
    comp 420 (t 2 "C") 150;
    { Obs.t_ns = 440; body = Obs.Wm_tick { completions = 1; injected = 0 } };
  ]

let test_analyze_critical_path_pinned () =
  let a = Analyze.of_events handbuilt_cpu_events in
  Alcotest.(check int) "makespan is the WM-observed end" 440 (Analyze.makespan_ns a);
  let cp = Analyze.critical_path a in
  Alcotest.(check int) "length = makespan" 440 cp.Analyze.cp_length_ns;
  Alcotest.(check int) "three steps" 3 (List.length cp.Analyze.cp_steps);
  let nth n = List.nth cp.Analyze.cp_steps n in
  Alcotest.(check (list string)) "edge kinds"
    [ "injection"; "resource"; "dependency" ]
    (List.map (fun s -> Analyze.edge_name s.Analyze.s_edge) cp.Analyze.cp_steps);
  Alcotest.(check (list string)) "path nodes" [ "A"; "B"; "C" ]
    (List.map (fun s -> s.Analyze.s_task.Analyze.x_node) cp.Analyze.cp_steps);
  Alcotest.(check (list int)) "gaps" [ 0; 20; 0 ]
    (List.map (fun s -> s.Analyze.s_gap_ns) cp.Analyze.cp_steps);
  Alcotest.(check (list int)) "services" [ 100; 150; 150 ]
    (List.map (fun s -> s.Analyze.s_service_ns) cp.Analyze.cp_steps);
  (* Slack: B's binding resource (A's completion at 100) could move up
     to 100 ns earlier before B's own readiness binds; C's binding
     dependency (B at 270) has A's completion at 100 as the
     next-latest same-instance constraint. *)
  Alcotest.(check int) "injection slack" 0 (nth 0).Analyze.s_slack_ns;
  Alcotest.(check int) "resource slack" 100 (nth 1).Analyze.s_slack_ns;
  Alcotest.(check int) "dependency slack" 170 (nth 2).Analyze.s_slack_ns;
  Alcotest.(check int) "gap total" 20 cp.Analyze.cp_gap_ns;
  Alcotest.(check int) "service total" 400 cp.Analyze.cp_service_ns;
  Alcotest.(check int) "observe tail" 20 cp.Analyze.cp_observe_ns;
  Alcotest.(check int) "no dma on a cpu-only path" 0 cp.Analyze.cp_dma_ns;
  Alcotest.(check (float 1e-9)) "dma frac" 0.0 cp.Analyze.cp_dma_frac

let test_analyze_utilization_and_queueing_pinned () =
  let a = Analyze.of_events handbuilt_cpu_events in
  (match Analyze.utilization a with
  | [ ("cpu0", u) ] -> Alcotest.(check (float 1e-9)) "cpu0 busy fraction" (400.0 /. 440.0) u
  | other -> Alcotest.failf "unexpected utilization shape (%d PEs)" (List.length other));
  (match Analyze.utilization_by_class a with
  | [ ("cpu", u) ] -> Alcotest.(check (float 1e-9)) "class mean" (400.0 /. 440.0) u
  | _ -> Alcotest.fail "unexpected class shape");
  (match Analyze.occupancy_by_class a with
  | [ ("cpu", series) ] ->
      (* dispatches at 0, 120, 270 against completions at 100, 270, 420:
         cpu occupancy never exceeds one task. *)
      Alcotest.(check bool) "single-PE occupancy <= 1" true
        (List.for_all (fun (_, lvl) -> lvl <= 1) series);
      Alcotest.(check bool) "goes idle at the end" true
        (match List.rev series with (_, 0) :: _ -> true | _ -> false)
  | _ -> Alcotest.fail "unexpected occupancy shape");
  let q = Analyze.queueing a in
  Alcotest.(check int) "three tasks" 3 q.Analyze.q_wait.Analyze.d_n;
  Alcotest.(check (float 1e-9)) "mean wait us" 0.04 q.Analyze.q_wait.Analyze.d_mean_us;
  Alcotest.(check (float 1e-9)) "max wait us" 0.12 q.Analyze.q_wait.Analyze.d_max_us;
  Alcotest.(check (float 1e-9)) "max service us" 0.15 q.Analyze.q_service.Analyze.d_max_us;
  Alcotest.(check (float 1e-9)) "no stalls" 0.0 q.Analyze.q_stall.Analyze.d_max_us

let test_analyze_dma_and_stall_attribution () =
  (* One accelerator task with DMA phases and a stalled stream inside
     its service window: the path decomposition must charge both. *)
  let events =
    [
      { Obs.t_ns = 0; body = Obs.Instance_injected { instance = 0; app = "app" } };
      { Obs.t_ns = 0; body = Obs.Task_ready { task = 0; instance = 0; app = "app"; node = "K" } };
      {
        Obs.t_ns = 0;
        body =
          Obs.Task_dispatched
            { task = 0; instance = 0; app = "app"; node = "K"; pe = "fft0"; pe_index = 1;
              wait_ns = 0 };
      };
      {
        Obs.t_ns = 50;
        body = Obs.Phase { task = 0; pe_index = 1; phase = Obs.Dma_in; start_ns = 0; dur_ns = 50 };
      };
      {
        Obs.t_ns = 150;
        body =
          Obs.Phase { task = 0; pe_index = 1; phase = Obs.Device_compute; start_ns = 50; dur_ns = 100 };
      };
      {
        Obs.t_ns = 150;
        body = Obs.Stream_admitted { pe_index = 1; bytes = 1024; stall_ns = 30; inflight = 1 };
      };
      {
        Obs.t_ns = 200;
        body = Obs.Phase { task = 0; pe_index = 1; phase = Obs.Dma_out; start_ns = 150; dur_ns = 50 };
      };
      {
        Obs.t_ns = 200;
        body =
          Obs.Task_completed
            { task = 0; instance = 0; app = "app"; node = "K"; pe = "fft0"; pe_index = 1;
              service_ns = 200 };
      };
      { Obs.t_ns = 210; body = Obs.Wm_tick { completions = 1; injected = 0 } };
    ]
  in
  let a = Analyze.of_events events in
  (match Analyze.tasks a with
  | [ x ] ->
      Alcotest.(check int) "dma_in + dma_out charged" 100 x.Analyze.x_dma_ns;
      Alcotest.(check int) "stall attributed to the occupying task" 30 x.Analyze.x_stall_ns
  | _ -> Alcotest.fail "expected one task");
  let cp = Analyze.critical_path a in
  Alcotest.(check int) "length = makespan" 210 cp.Analyze.cp_length_ns;
  Alcotest.(check int) "path dma" 100 cp.Analyze.cp_dma_ns;
  Alcotest.(check int) "path stall" 30 cp.Analyze.cp_stall_ns;
  Alcotest.(check (float 1e-9)) "dma fraction of the path" (100.0 /. 210.0)
    cp.Analyze.cp_dma_frac

let test_analyze_empty_log () =
  let a = Analyze.of_events [] in
  Alcotest.(check int) "zero makespan" 0 (Analyze.makespan_ns a);
  let cp = Analyze.critical_path a in
  Alcotest.(check int) "empty path" 0 (List.length cp.Analyze.cp_steps);
  Alcotest.(check int) "zero length" 0 cp.Analyze.cp_length_ns;
  Alcotest.(check bool) "no utilization" true (Analyze.utilization a = [])

let test_analyze_pp_and_json () =
  let a = Analyze.of_events handbuilt_cpu_events in
  let text = Format.asprintf "%a" Analyze.pp a in
  List.iter
    (fun needle -> Alcotest.(check bool) ("report mentions " ^ needle) true (contains ~needle text))
    [ "critical path"; "utilization"; "queueing"; "dependency"; "resource"; "injection" ];
  let json = Analyze.to_json a in
  Alcotest.(check bool) "round-trips through the parser" true
    (Json.parse (Json.to_string json) = Ok json);
  match Json.member "critical_path" json with
  | Ok cp -> (
      match (Json.member "length_ns" cp, Json.member "observe_ns" cp) with
      | Ok l, Ok o ->
          Alcotest.(check bool) "length pinned" true (l = Json.int 440);
          Alcotest.(check bool) "observe pinned" true (o = Json.int 20)
      | _ -> Alcotest.fail "length_ns/observe_ns missing")
  | Error _ -> Alcotest.fail "critical_path missing"

(* ---------------------- periodic metrics flusher ---------------------- *)

let test_flush_snapshots_and_close () =
  let path = Filename.temp_file "dssoc_metrics" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = Obs.Metrics.create () in
      let c = Obs.Metrics.counter m "ticks" in
      let f = Obs.Flush.every ~period_ms:1 ~path m in
      Alcotest.(check string) "path recorded" path (Obs.Flush.path f);
      for i = 1 to 6 do
        Obs.Metrics.incr c;
        (* 0.6 ms apart with a 1 ms period: snapshots due at ticks
           1, 3 and 5; close covers the trailing tick at 3.6 ms. *)
        Obs.Flush.tick f ~now:(i * 600_000)
      done;
      Obs.Flush.close f;
      Alcotest.(check int) "snapshot count" 4 (Obs.Flush.snapshots f);
      Obs.Flush.close f;
      Alcotest.(check int) "close idempotent" 4 (Obs.Flush.snapshots f);
      let lines =
        In_channel.with_open_bin path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one JSONL line per snapshot" 4 (List.length lines);
      let ts =
        List.map
          (fun line ->
            match Json.parse line with
            | Ok j -> (
                match (Json.member "t_ns" j, Json.member "counters" j) with
                | Ok t, Ok (Json.Obj cs) ->
                    Alcotest.(check bool) "counters present" true (List.mem_assoc "ticks" cs);
                    (match t with Json.Int v -> v | _ -> Alcotest.fail "t_ns not an int")
                | _ -> Alcotest.fail "snapshot shape")
            | Error e -> Alcotest.failf "unparseable snapshot: %s" (Json.error_to_string e))
          lines
      in
      Alcotest.(check (list int)) "snapshot times pinned"
        [ 600_000; 1_800_000; 3_000_000; 3_600_000 ] ts)

let test_flush_midstream_durability () =
  (* The flusher rewrites to a temp file and renames: at ANY point in
     the stream — i.e. after every snapshot — a concurrent reader (or a
     process killed right here) sees only complete, parseable lines. *)
  let path = Filename.temp_file "dssoc_metrics" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      let m = Obs.Metrics.create () in
      let c = Obs.Metrics.counter m "ticks" in
      let f = Obs.Flush.every ~period_ms:1 ~path m in
      for i = 1 to 9 do
        Obs.Metrics.incr c;
        Obs.Flush.tick f ~now:(i * 1_000_000);
        (* mid-stream check: every line on disk parses right now *)
        let lines =
          In_channel.with_open_bin path In_channel.input_all
          |> String.split_on_char '\n'
          |> List.filter (fun l -> l <> "")
        in
        Alcotest.(check int)
          (Printf.sprintf "tick %d: snapshots all on disk" i)
          (Obs.Flush.snapshots f) (List.length lines);
        List.iteri
          (fun j line ->
            match Json.parse line with
            | Ok _ -> ()
            | Error e ->
              Alcotest.failf "tick %d line %d unparseable: %s" i j (Json.error_to_string e))
          lines
      done;
      Obs.Flush.close f;
      Alcotest.(check bool) "no temp file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

let test_flush_rejects_bad_period () =
  let m = Obs.Metrics.create () in
  Alcotest.check_raises "period 0 rejected"
    (Invalid_argument "Obs.Flush.every: period_ms must be positive") (fun () ->
      ignore (Obs.Flush.every ~period_ms:0 ~path:"/dev/null" m))

let test_flush_driven_by_engine_run () =
  (* End-to-end through the WM tick: the same seeded run produces the
     same snapshot stream, byte for byte. *)
  let snap () =
    let path = Filename.temp_file "dssoc_metrics" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
        let workload =
          Workload.validation
            [ (Reference_apps.wifi_tx (), 1); (Reference_apps.range_detection (), 1) ]
        in
        let m = Obs.Metrics.create () in
        let obs = Obs.make ~metrics:m () in
        let f = Obs.Flush.every ~period_ms:1 ~path m in
        Obs.set_flush obs f;
        ignore
          (Emulator.run_exn ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L) ~config ~workload
             ~obs ());
        Obs.Flush.close f;
        (Obs.Flush.snapshots f, In_channel.with_open_bin path In_channel.input_all))
  in
  let n1, s1 = snap () in
  let n2, s2 = snap () in
  Alcotest.(check bool) "snapshots taken" true (n1 > 1);
  Alcotest.(check int) "snapshot count deterministic" n1 n2;
  Alcotest.(check string) "snapshot stream deterministic" s1 s2

let () =
  Alcotest.run "observability"
    [
      ( "gantt",
        [
          Alcotest.test_case "zero-width span" `Quick test_gantt_zero_width_span;
          Alcotest.test_case "degenerate width" `Quick test_gantt_degenerate_width;
          Alcotest.test_case "zero makespan" `Quick test_gantt_zero_makespan;
          Alcotest.test_case "alphabet exhaustion" `Quick test_gantt_many_apps;
        ] );
      ( "golden",
        [
          Alcotest.test_case "records_csv" `Quick test_records_csv_golden;
          Alcotest.test_case "compiled records_csv" `Quick test_compiled_records_csv_golden;
          Alcotest.test_case "chrome_trace" `Quick test_chrome_trace_golden;
          Alcotest.test_case "chrome_trace roundtrip" `Quick test_chrome_trace_roundtrip;
        ] );
      ( "ring sink",
        [
          Alcotest.test_case "retention below capacity" `Quick test_ring_retention;
          Alcotest.test_case "wrap and overflow accounting" `Quick test_ring_wrap;
          Alcotest.test_case "bad capacity" `Quick test_ring_bad_capacity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram agrees with Quantile" `Quick test_histogram_matches_quantile;
          Alcotest.test_case "gauge series semantics" `Quick test_gauge_series_collapses_same_timestamp;
        ] );
      ( "event log",
        [
          Alcotest.test_case "golden JSONL" `Quick test_jsonl_golden;
          Alcotest.test_case "parseable and deterministic" `Quick test_jsonl_parses_and_deterministic;
          Alcotest.test_case "event JSON round-trip" `Quick test_event_json_roundtrip;
          Alcotest.test_case "streaming writer byte-identical" `Quick
            test_output_jsonl_streams_same_bytes;
        ] );
      ( "chrome trace + obs",
        [ Alcotest.test_case "counter tracks and DMA sub-spans" `Quick test_chrome_trace_with_obs ] );
      ( "analysis",
        [
          Alcotest.test_case "critical path pinned" `Quick test_analyze_critical_path_pinned;
          Alcotest.test_case "utilization and queueing pinned" `Quick
            test_analyze_utilization_and_queueing_pinned;
          Alcotest.test_case "dma and stall attribution" `Quick
            test_analyze_dma_and_stall_attribution;
          Alcotest.test_case "empty log" `Quick test_analyze_empty_log;
          Alcotest.test_case "pp and json" `Quick test_analyze_pp_and_json;
        ] );
      ( "metrics flusher",
        [
          Alcotest.test_case "snapshots and close" `Quick test_flush_snapshots_and_close;
          Alcotest.test_case "bad period rejected" `Quick test_flush_rejects_bad_period;
          Alcotest.test_case "mid-stream durability" `Quick test_flush_midstream_durability;
          Alcotest.test_case "engine-driven determinism" `Quick test_flush_driven_by_engine_run;
        ] );
    ]
