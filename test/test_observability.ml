(* Observability regression tests: hardened Gantt rendering edge cases
   plus golden outputs pinning [Stats.records_csv] and
   [Stats.chrome_trace] for a fixed seeded run, so any change to the
   exporter formats (column order, units, field names) is caught
   deliberately rather than discovered by downstream tooling. *)

module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Config = Dssoc_soc.Config
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module Json = Dssoc_json.Json
module Obs = Dssoc_obs.Obs
module Quantile = Dssoc_stats.Quantile

(* ---------------------- hand-built reports for Gantt edges ---------------------- *)

let mk_record ~app ~node ~pe ~d ~c =
  {
    Stats.app;
    instance = 0;
    node;
    pe;
    ready_ns = 0;
    dispatched_ns = d;
    completed_ns = c;
  }

let mk_usage label =
  {
    Stats.pe_label = label;
    pe_kind = "cpu";
    busy_ns = 0;
    tasks_run = 0;
    busy_energy_mj = 0.0;
    energy_mj = 0.0;
  }

let mk_report ?(makespan = 1_000_000) records pe_labels =
  {
    Stats.host_name = "ZCU102";
    config_label = "test";
    policy_name = "FRFS";
    makespan_ns = makespan;
    job_count = List.length records;
    task_count = List.length records;
    pe_usage = List.map mk_usage pe_labels;
    sched_invocations = 0;
    sched_ns = 0;
    wm_overhead_ns = 0;
    records;
    app_stats = [];
    verdict = Stats.Completed;
    resilience = Stats.no_faults;
    fabric = Stats.no_fabric;
  }

let contains ~needle haystack =
  let n = String.length needle in
  let rec go i = i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_gantt_zero_width_span () =
  (* An instantaneous task at the very end of the makespan used to
     produce an empty (or reversed) fill range; it must render exactly
     one visible cell and never raise. *)
  let r = mk_report [ mk_record ~app:"blip" ~node:"N" ~pe:"cpu0" ~d:1_000_000 ~c:1_000_000 ] [ "cpu0" ] in
  let g = Stats.gantt ~width:40 r in
  Alcotest.(check bool) "letter rendered" true (contains ~needle:"a" g);
  let row = List.find (fun l -> contains ~needle:"cpu0" l) (String.split_on_char '\n' g) in
  Alcotest.(check bool) "span visible in the cpu0 row" true (contains ~needle:"a|" row)

let test_gantt_degenerate_width () =
  (* width 0 (or negative) is clamped to a single column instead of
     crashing on Bytes.set row (-1). *)
  List.iter
    (fun width ->
      let r = mk_report [ mk_record ~app:"x" ~node:"N" ~pe:"cpu0" ~d:0 ~c:500 ] [ "cpu0" ] in
      let g = Stats.gantt ~width r in
      Alcotest.(check bool) "renders non-empty" true (String.length g > 0))
    [ 0; -5; 1 ]

let test_gantt_zero_makespan () =
  let r = mk_report ~makespan:0 [ mk_record ~app:"x" ~node:"N" ~pe:"cpu0" ~d:0 ~c:0 ] [ "cpu0" ] in
  let g = Stats.gantt ~width:20 r in
  Alcotest.(check bool) "renders" true (String.length g > 0)

let test_gantt_many_apps () =
  (* 30 distinct applications exhaust a-z; the 27th app must continue
     into upper case rather than rendering '?' for every extra app. *)
  let apps = List.init 30 (fun i -> Printf.sprintf "app%02d" i) in
  let records =
    List.mapi (fun i app -> mk_record ~app ~node:"N" ~pe:"cpu0" ~d:(i * 1000) ~c:((i * 1000) + 900)) apps
  in
  let r = mk_report ~makespan:30_000 records [ "cpu0" ] in
  let g = Stats.gantt ~width:120 r in
  Alcotest.(check bool) "no unknown-letter fallback" false (contains ~needle:"?" g);
  Alcotest.(check bool) "27th app maps to upper case" true (contains ~needle:"A = app26" g);
  Alcotest.(check bool) "30th app present in legend" true (contains ~needle:"D = app29" g)

(* ---------------------- golden exporter outputs ---------------------- *)

(* Fixed scenario: 1x wifi_tx on 2Core+1FFT, deterministic virtual
   engine (jitter 0, seed 1).  Regenerate the golden strings with
   [dune exec goldengen/gen.exe] equivalents if the execution model
   deliberately changes, and mention the change in CHANGES.md. *)
let golden_run () =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation [ (Reference_apps.wifi_tx (), 1) ] in
  Emulator.run_exn ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L) ~config ~workload ()

let golden_csv =
  "app,instance,node,pe,ready_ns,dispatched_ns,completed_ns\n\
     wifi_tx,0,CRC,cpu0,1050,5250,9042\n\
     wifi_tx,0,SCRAMBLE,cpu0,10092,14292,19172\n\
     wifi_tx,0,ENCODE,cpu0,20222,24422,34622\n\
     wifi_tx,0,INTERLEAVE,cpu0,35672,39872,47584\n\
     wifi_tx,0,MODULATE,cpu0,48634,52834,62474\n\
     wifi_tx,0,PILOT,cpu0,63524,67724,71254\n\
     wifi_tx,0,IFFT,cpu0,72304,76504,91944\n\
     "

let golden_trace =
  "{\n  \"traceEvents\": [\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"name\": \"cpu0\"\n      }\n    },\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 1,\n      \"args\": {\n        \"name\": \"cpu1\"\n      }\n    },\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 2,\n      \"args\": {\n        \"name\": \"fft2\"\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:CRC\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 5.25,\n      \"dur\": 3.7919999999999998,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 1.05\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:SCRAMBLE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 14.292,\n      \"dur\": 4.8799999999999999,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 10.092000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:ENCODE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 24.422000000000001,\n      \"dur\": 10.199999999999999,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 20.222000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:INTERLEAVE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 39.872,\n      \"dur\": 7.7119999999999997,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 35.671999999999997\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:MODULATE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 52.834000000000003,\n      \"dur\": 9.6400000000000006,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 48.634\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:PILOT\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 67.724000000000004,\n      \"dur\": 3.5299999999999998,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 63.524000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:IFFT\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 76.504000000000005,\n      \"dur\": 15.44,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 72.304000000000002\n      }\n    }\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n    \"config\": \"2Core+1FFT\",\n    \"policy\": \"FRFS\",\n    \"host\": \"ZCU102\"\n  }\n}"

let test_records_csv_golden () =
  Alcotest.(check string) "records_csv pinned" golden_csv (Stats.records_csv (golden_run ()))

let test_compiled_records_csv_golden () =
  (* The compiled engine must replay the golden scenario byte for
     byte, so it is pinned against the *same* literal as the virtual
     engine — one golden, two engines. *)
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation [ (Reference_apps.wifi_tx (), 1) ] in
  let r =
    Emulator.run_exn ~engine:(Emulator.compiled_seeded ~jitter:0.0 1L) ~config ~workload ()
  in
  Alcotest.(check string) "compiled records_csv pinned" golden_csv (Stats.records_csv r)

let test_chrome_trace_golden () =
  Alcotest.(check string) "chrome_trace pinned" golden_trace
    (Json.to_string (Stats.chrome_trace (golden_run ())))

let test_chrome_trace_roundtrip () =
  let json = Stats.chrome_trace (golden_run ()) in
  Alcotest.(check bool) "parses back" true (Json.parse (Json.to_string json) = Ok json)

(* ---------------------- ring sink ---------------------- *)

let tick i = Obs.Wm_tick { completions = i; injected = 0 }

let test_ring_retention () =
  let s = Obs.Sink.ring ~capacity:4 () in
  Alcotest.(check bool) "not null" false (Obs.Sink.is_null s);
  Alcotest.(check int) "empty" 0 (Obs.Sink.length s);
  for i = 0 to 2 do
    Obs.Sink.emit s i (tick i)
  done;
  Alcotest.(check int) "three stored" 3 (Obs.Sink.length s);
  Alcotest.(check int) "none dropped" 0 (Obs.Sink.dropped s);
  Alcotest.(check (list int)) "oldest first" [ 0; 1; 2 ]
    (List.map (fun e -> e.Obs.t_ns) (Obs.Sink.events s))

let test_ring_wrap () =
  let s = Obs.Sink.ring ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Sink.emit s i (tick i)
  done;
  Alcotest.(check int) "capacity retained" 4 (Obs.Sink.length s);
  Alcotest.(check int) "total counts everything" 10 (Obs.Sink.total s);
  Alcotest.(check int) "overwritten counted as dropped" 6 (Obs.Sink.dropped s);
  Alcotest.(check (list int)) "last four, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Obs.t_ns) (Obs.Sink.events s));
  (* bodies survive the wrap with their payloads intact *)
  List.iter2
    (fun e i ->
      match e.Obs.body with
      | Obs.Wm_tick { completions; _ } -> Alcotest.(check int) "payload" i completions
      | _ -> Alcotest.fail "unexpected body")
    (Obs.Sink.events s) [ 6; 7; 8; 9 ]

let test_ring_bad_capacity () =
  Alcotest.check_raises "capacity 0 rejected" (Invalid_argument "Obs.Sink.ring: capacity must be positive")
    (fun () -> ignore (Obs.Sink.ring ~capacity:0 ()))

(* ---------------------- metrics registry ---------------------- *)

let test_histogram_matches_quantile () =
  (* The histogram summary must agree with Dssoc_stats.Quantile applied
     to the raw samples — the registry stores, Quantile computes. *)
  let samples = [| 3.2; 1.0; 4.4; 1.5; 9.6; 2.7; 5.3; 5.8 |] in
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  Array.iter (Obs.Metrics.observe h) samples;
  Alcotest.(check int) "count" (Array.length samples) (Obs.Metrics.histogram_count h);
  let got name f expect =
    match f with
    | None -> Alcotest.failf "%s: no samples" name
    | Some v -> Alcotest.(check (float 1e-9)) name expect v
  in
  got "mean" (Obs.Metrics.histogram_mean h) (Quantile.mean samples);
  got "p50" (Obs.Metrics.histogram_quantile h 0.5) (Quantile.quantile samples 0.5);
  got "p95" (Obs.Metrics.histogram_quantile h 0.95) (Quantile.quantile samples 0.95)

let test_gauge_series_collapses_same_timestamp () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "depth" in
  Obs.Metrics.set g ~t_ns:10 1;
  Obs.Metrics.set g ~t_ns:10 3;
  Obs.Metrics.set g ~t_ns:20 2;
  Alcotest.(check (list (pair int int))) "step series" [ (10, 3); (20, 2) ]
    (Obs.Metrics.gauge_series g);
  Alcotest.(check int) "max sees collapsed peak" 3 (Obs.Metrics.gauge_max g);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Obs.Metrics.counter: depth registered with another kind")
    (fun () -> ignore (Obs.Metrics.counter m "depth"))

(* ---------------------- golden JSONL event log ---------------------- *)

let observed_run workload_apps =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation workload_apps in
  let obs = Obs.make ~sink:(Obs.Sink.ring ()) ~metrics:(Obs.Metrics.create ()) () in
  let r =
    Emulator.run_exn ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L) ~config ~workload ~obs ()
  in
  (r, obs)

(* Golden for the same fixed scenario as [golden_csv]/[golden_trace];
   regenerate with [dune exec goldengen/gen.exe]. *)
let golden_jsonl =
  String.concat "\n"
    [
      {|{"t":1050,"ev":"instance_injected","instance":0,"app":"wifi_tx"}|};
      {|{"t":1050,"ev":"task_ready","task":0,"instance":0,"app":"wifi_tx","node":"CRC"}|};
      {|{"t":3450,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":5250,"ev":"task_dispatched","task":0,"instance":0,"app":"wifi_tx","node":"CRC","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":5250,"ev":"wm_tick","completions":0,"injected":1}|};
      {|{"t":9042,"ev":"task_completed","task":0,"instance":0,"app":"wifi_tx","node":"CRC","pe":"cpu0","pe_index":0,"service_ns":3792}|};
      {|{"t":10092,"ev":"task_ready","task":1,"instance":0,"app":"wifi_tx","node":"SCRAMBLE"}|};
      {|{"t":12492,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":14292,"ev":"task_dispatched","task":1,"instance":0,"app":"wifi_tx","node":"SCRAMBLE","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":14292,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":19172,"ev":"task_completed","task":1,"instance":0,"app":"wifi_tx","node":"SCRAMBLE","pe":"cpu0","pe_index":0,"service_ns":4880}|};
      {|{"t":20222,"ev":"task_ready","task":2,"instance":0,"app":"wifi_tx","node":"ENCODE"}|};
      {|{"t":22622,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":24422,"ev":"task_dispatched","task":2,"instance":0,"app":"wifi_tx","node":"ENCODE","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":24422,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":34622,"ev":"task_completed","task":2,"instance":0,"app":"wifi_tx","node":"ENCODE","pe":"cpu0","pe_index":0,"service_ns":10200}|};
      {|{"t":35672,"ev":"task_ready","task":3,"instance":0,"app":"wifi_tx","node":"INTERLEAVE"}|};
      {|{"t":38072,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":39872,"ev":"task_dispatched","task":3,"instance":0,"app":"wifi_tx","node":"INTERLEAVE","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":39872,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":47584,"ev":"task_completed","task":3,"instance":0,"app":"wifi_tx","node":"INTERLEAVE","pe":"cpu0","pe_index":0,"service_ns":7712}|};
      {|{"t":48634,"ev":"task_ready","task":4,"instance":0,"app":"wifi_tx","node":"MODULATE"}|};
      {|{"t":51034,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":52834,"ev":"task_dispatched","task":4,"instance":0,"app":"wifi_tx","node":"MODULATE","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":52834,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":62474,"ev":"task_completed","task":4,"instance":0,"app":"wifi_tx","node":"MODULATE","pe":"cpu0","pe_index":0,"service_ns":9640}|};
      {|{"t":63524,"ev":"task_ready","task":5,"instance":0,"app":"wifi_tx","node":"PILOT"}|};
      {|{"t":65924,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":67724,"ev":"task_dispatched","task":5,"instance":0,"app":"wifi_tx","node":"PILOT","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":67724,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":71254,"ev":"task_completed","task":5,"instance":0,"app":"wifi_tx","node":"PILOT","pe":"cpu0","pe_index":0,"service_ns":3530}|};
      {|{"t":72304,"ev":"task_ready","task":6,"instance":0,"app":"wifi_tx","node":"IFFT"}|};
      {|{"t":74704,"ev":"sched","ready":1,"examined":1,"ops":3,"cost_ns":2000,"assigned":1}|};
      {|{"t":76504,"ev":"task_dispatched","task":6,"instance":0,"app":"wifi_tx","node":"IFFT","pe":"cpu0","pe_index":0,"wait_ns":4200}|};
      {|{"t":76504,"ev":"wm_tick","completions":1,"injected":0}|};
      {|{"t":91944,"ev":"task_completed","task":6,"instance":0,"app":"wifi_tx","node":"IFFT","pe":"cpu0","pe_index":0,"service_ns":15440}|};
      {|{"t":92994,"ev":"wm_tick","completions":1,"injected":0}|};
      "";
    ]

let test_jsonl_golden () =
  let _, obs = observed_run [ (Reference_apps.wifi_tx (), 1) ] in
  Alcotest.(check string) "event log pinned" golden_jsonl
    (Obs.to_jsonl (Obs.recorded_events obs));
  Alcotest.(check int) "nothing dropped" 0 (Obs.Sink.dropped (Obs.sink obs))

let test_jsonl_parses_and_deterministic () =
  (* A workload that also exercises the FFT accelerator (phase events). *)
  let apps = [ (Reference_apps.wifi_tx (), 1); (Reference_apps.range_detection (), 1) ] in
  let _, obs1 = observed_run apps in
  let _, obs2 = observed_run apps in
  let jsonl = Obs.to_jsonl (Obs.recorded_events obs1) in
  Alcotest.(check string) "bit-identical across identical runs" jsonl
    (Obs.to_jsonl (Obs.recorded_events obs2));
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl) in
  Alcotest.(check bool) "non-trivial log" true (List.length lines > 20);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Obj members) ->
          Alcotest.(check bool) "has t" true (List.mem_assoc "t" members);
          Alcotest.(check bool) "has ev" true (List.mem_assoc "ev" members)
      | Ok _ -> Alcotest.failf "line is not an object: %s" line
      | Error e -> Alcotest.failf "unparseable line %s: %s" line (Json.error_to_string e))
    lines;
  let has_ev name =
    List.exists (fun l -> contains ~needle:(Printf.sprintf "\"ev\":%S" name) l) lines
  in
  List.iter
    (fun name -> Alcotest.(check bool) name true (has_ev name))
    [ "instance_injected"; "task_ready"; "task_dispatched"; "task_completed"; "sched"; "phase"; "wm_tick" ]

(* ---------------------- chrome trace with observation data ---------------------- *)

let trace_events json =
  match Json.member "traceEvents" json with
  | Ok (Json.List evs) -> evs
  | _ -> Alcotest.fail "traceEvents missing"

let str_member name ev = match Json.member name ev with Ok (Json.String s) -> Some s | _ -> None

let test_chrome_trace_with_obs () =
  let apps = [ (Reference_apps.wifi_tx (), 1); (Reference_apps.range_detection (), 1) ] in
  let r, obs = observed_run apps in
  let json = Stats.chrome_trace ~obs r in
  (* round-trips through the parser *)
  Alcotest.(check bool) "parses back" true (Json.parse (Json.to_string json) = Ok json);
  let evs = trace_events json in
  let phases ph =
    List.exists (fun e -> str_member "ph" e = Some "X" && str_member "name" e = Some ph) evs
  in
  List.iter
    (fun ph -> Alcotest.(check bool) ("DMA sub-span " ^ ph) true (phases ph))
    [ "dma_in"; "compute"; "dma_out" ];
  let counter_names =
    List.filter_map (fun e -> if str_member "ph" e = Some "C" then str_member "name" e else None) evs
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "ready-queue counter track" true (List.mem "ready_queue_depth" counter_names);
  Alcotest.(check bool) "in-flight counter track" true (List.mem "in_flight_tasks" counter_names);
  Alcotest.(check bool) ">= 2 counter tracks" true (List.length counter_names >= 2);
  (* without ~obs the output must be exactly the pre-observability trace *)
  Alcotest.(check bool) "no counter events without obs" true
    (List.for_all
       (fun e -> str_member "ph" e <> Some "C")
       (trace_events (Stats.chrome_trace r)))

let () =
  Alcotest.run "observability"
    [
      ( "gantt",
        [
          Alcotest.test_case "zero-width span" `Quick test_gantt_zero_width_span;
          Alcotest.test_case "degenerate width" `Quick test_gantt_degenerate_width;
          Alcotest.test_case "zero makespan" `Quick test_gantt_zero_makespan;
          Alcotest.test_case "alphabet exhaustion" `Quick test_gantt_many_apps;
        ] );
      ( "golden",
        [
          Alcotest.test_case "records_csv" `Quick test_records_csv_golden;
          Alcotest.test_case "compiled records_csv" `Quick test_compiled_records_csv_golden;
          Alcotest.test_case "chrome_trace" `Quick test_chrome_trace_golden;
          Alcotest.test_case "chrome_trace roundtrip" `Quick test_chrome_trace_roundtrip;
        ] );
      ( "ring sink",
        [
          Alcotest.test_case "retention below capacity" `Quick test_ring_retention;
          Alcotest.test_case "wrap and overflow accounting" `Quick test_ring_wrap;
          Alcotest.test_case "bad capacity" `Quick test_ring_bad_capacity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram agrees with Quantile" `Quick test_histogram_matches_quantile;
          Alcotest.test_case "gauge series semantics" `Quick test_gauge_series_collapses_same_timestamp;
        ] );
      ( "event log",
        [
          Alcotest.test_case "golden JSONL" `Quick test_jsonl_golden;
          Alcotest.test_case "parseable and deterministic" `Quick test_jsonl_parses_and_deterministic;
        ] );
      ( "chrome trace + obs",
        [ Alcotest.test_case "counter tracks and DMA sub-spans" `Quick test_chrome_trace_with_obs ] );
    ]
