(* Observability regression tests: hardened Gantt rendering edge cases
   plus golden outputs pinning [Stats.records_csv] and
   [Stats.chrome_trace] for a fixed seeded run, so any change to the
   exporter formats (column order, units, field names) is caught
   deliberately rather than discovered by downstream tooling. *)

module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Config = Dssoc_soc.Config
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module Json = Dssoc_json.Json

(* ---------------------- hand-built reports for Gantt edges ---------------------- *)

let mk_record ~app ~node ~pe ~d ~c =
  {
    Stats.app;
    instance = 0;
    node;
    pe;
    ready_ns = 0;
    dispatched_ns = d;
    completed_ns = c;
  }

let mk_usage label =
  {
    Stats.pe_label = label;
    pe_kind = "cpu";
    busy_ns = 0;
    tasks_run = 0;
    busy_energy_mj = 0.0;
    energy_mj = 0.0;
  }

let mk_report ?(makespan = 1_000_000) records pe_labels =
  {
    Stats.host_name = "ZCU102";
    config_label = "test";
    policy_name = "FRFS";
    makespan_ns = makespan;
    job_count = List.length records;
    task_count = List.length records;
    pe_usage = List.map mk_usage pe_labels;
    sched_invocations = 0;
    sched_ns = 0;
    wm_overhead_ns = 0;
    records;
    app_stats = [];
  }

let contains ~needle haystack =
  let n = String.length needle in
  let rec go i = i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_gantt_zero_width_span () =
  (* An instantaneous task at the very end of the makespan used to
     produce an empty (or reversed) fill range; it must render exactly
     one visible cell and never raise. *)
  let r = mk_report [ mk_record ~app:"blip" ~node:"N" ~pe:"cpu0" ~d:1_000_000 ~c:1_000_000 ] [ "cpu0" ] in
  let g = Stats.gantt ~width:40 r in
  Alcotest.(check bool) "letter rendered" true (contains ~needle:"a" g);
  let row = List.find (fun l -> contains ~needle:"cpu0" l) (String.split_on_char '\n' g) in
  Alcotest.(check bool) "span visible in the cpu0 row" true (contains ~needle:"a|" row)

let test_gantt_degenerate_width () =
  (* width 0 (or negative) is clamped to a single column instead of
     crashing on Bytes.set row (-1). *)
  List.iter
    (fun width ->
      let r = mk_report [ mk_record ~app:"x" ~node:"N" ~pe:"cpu0" ~d:0 ~c:500 ] [ "cpu0" ] in
      let g = Stats.gantt ~width r in
      Alcotest.(check bool) "renders non-empty" true (String.length g > 0))
    [ 0; -5; 1 ]

let test_gantt_zero_makespan () =
  let r = mk_report ~makespan:0 [ mk_record ~app:"x" ~node:"N" ~pe:"cpu0" ~d:0 ~c:0 ] [ "cpu0" ] in
  let g = Stats.gantt ~width:20 r in
  Alcotest.(check bool) "renders" true (String.length g > 0)

let test_gantt_many_apps () =
  (* 30 distinct applications exhaust a-z; the 27th app must continue
     into upper case rather than rendering '?' for every extra app. *)
  let apps = List.init 30 (fun i -> Printf.sprintf "app%02d" i) in
  let records =
    List.mapi (fun i app -> mk_record ~app ~node:"N" ~pe:"cpu0" ~d:(i * 1000) ~c:((i * 1000) + 900)) apps
  in
  let r = mk_report ~makespan:30_000 records [ "cpu0" ] in
  let g = Stats.gantt ~width:120 r in
  Alcotest.(check bool) "no unknown-letter fallback" false (contains ~needle:"?" g);
  Alcotest.(check bool) "27th app maps to upper case" true (contains ~needle:"A = app26" g);
  Alcotest.(check bool) "30th app present in legend" true (contains ~needle:"D = app29" g)

(* ---------------------- golden exporter outputs ---------------------- *)

(* Fixed scenario: 1x wifi_tx on 2Core+1FFT, deterministic virtual
   engine (jitter 0, seed 1).  Regenerate the golden strings with
   [dune exec goldengen/gen.exe] equivalents if the execution model
   deliberately changes, and mention the change in CHANGES.md. *)
let golden_run () =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation [ (Reference_apps.wifi_tx (), 1) ] in
  Emulator.run_exn ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L) ~config ~workload ()

let golden_csv =
  "app,instance,node,pe,ready_ns,dispatched_ns,completed_ns\n\
     wifi_tx,0,CRC,cpu0,1050,5250,9042\n\
     wifi_tx,0,SCRAMBLE,cpu0,10092,14292,19172\n\
     wifi_tx,0,ENCODE,cpu0,20222,24422,34622\n\
     wifi_tx,0,INTERLEAVE,cpu0,35672,39872,47584\n\
     wifi_tx,0,MODULATE,cpu0,48634,52834,62474\n\
     wifi_tx,0,PILOT,cpu0,63524,67724,71254\n\
     wifi_tx,0,IFFT,cpu0,72304,76504,91944\n\
     "

let golden_trace =
  "{\n  \"traceEvents\": [\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"name\": \"cpu0\"\n      }\n    },\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 1,\n      \"args\": {\n        \"name\": \"cpu1\"\n      }\n    },\n    {\n      \"name\": \"thread_name\",\n      \"ph\": \"M\",\n      \"pid\": 1,\n      \"tid\": 2,\n      \"args\": {\n        \"name\": \"fft2\"\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:CRC\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 5.25,\n      \"dur\": 3.7919999999999998,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 1.05\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:SCRAMBLE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 14.292,\n      \"dur\": 4.8799999999999999,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 10.092000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:ENCODE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 24.422000000000001,\n      \"dur\": 10.199999999999999,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 20.222000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:INTERLEAVE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 39.872,\n      \"dur\": 7.7119999999999997,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 35.671999999999997\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:MODULATE\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 52.834000000000003,\n      \"dur\": 9.6400000000000006,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 48.634\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:PILOT\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 67.724000000000004,\n      \"dur\": 3.5299999999999998,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 63.524000000000001\n      }\n    },\n    {\n      \"name\": \"wifi_tx/0:IFFT\",\n      \"cat\": \"wifi_tx\",\n      \"ph\": \"X\",\n      \"ts\": 76.504000000000005,\n      \"dur\": 15.44,\n      \"pid\": 1,\n      \"tid\": 0,\n      \"args\": {\n        \"ready_us\": 72.304000000000002\n      }\n    }\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n    \"config\": \"2Core+1FFT\",\n    \"policy\": \"FRFS\",\n    \"host\": \"ZCU102\"\n  }\n}"

let test_records_csv_golden () =
  Alcotest.(check string) "records_csv pinned" golden_csv (Stats.records_csv (golden_run ()))

let test_chrome_trace_golden () =
  Alcotest.(check string) "chrome_trace pinned" golden_trace
    (Json.to_string (Stats.chrome_trace (golden_run ())))

let test_chrome_trace_roundtrip () =
  let json = Stats.chrome_trace (golden_run ()) in
  Alcotest.(check bool) "parses back" true (Json.parse (Json.to_string json) = Ok json)

let () =
  Alcotest.run "observability"
    [
      ( "gantt",
        [
          Alcotest.test_case "zero-width span" `Quick test_gantt_zero_width_span;
          Alcotest.test_case "degenerate width" `Quick test_gantt_degenerate_width;
          Alcotest.test_case "zero makespan" `Quick test_gantt_zero_makespan;
          Alcotest.test_case "alphabet exhaustion" `Quick test_gantt_many_apps;
        ] );
      ( "golden",
        [
          Alcotest.test_case "records_csv" `Quick test_records_csv_golden;
          Alcotest.test_case "chrome_trace" `Quick test_chrome_trace_golden;
          Alcotest.test_case "chrome_trace roundtrip" `Quick test_chrome_trace_roundtrip;
        ] );
    ]
