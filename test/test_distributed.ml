(* Tests of the distributed-exploration layer: content-addressed
   result cache (digest stability, byte-identical round-trips),
   multi-process shard/merge equality, and adaptive successive-halving
   (never prunes a frontier arm; matches the exhaustive frontier on
   the tested grids). *)

module Grid = Dssoc_explore.Grid
module Sweep = Dssoc_explore.Sweep
module Cache = Dssoc_explore.Cache
module Frontier = Dssoc_explore.Frontier
module Config = Dssoc_soc.Config
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module Stats = Dssoc_runtime.Stats
module Fault = Dssoc_fault.Fault
module Json = Dssoc_json.Json

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dssoc-test-cache-%d-%d" (Unix.getpid ()) !n)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

let small_grid ?fault ?(jitter = 0.02) ?(replicates = 2) () =
  let c1 = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let c2 = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  Grid.make ~label:"small" ~replicates ~base_seed:42L ~jitter ?fault
    ~configs:[ (c1.Config.label, c1); (c2.Config.label, c2) ]
    ~policies:[ "FRFS"; "MET" ]
    ~workloads:
      [
        Grid.fixed_workload ~label:"tx" (Workload.validation [ (Reference_apps.wifi_tx (), 1) ]);
        Grid.fixed_workload ~label:"rd"
          (Workload.validation [ (Reference_apps.range_detection (), 1) ]);
      ]
    ()

let transient_plan =
  {
    Fault.default_plan with
    Fault.fault_seed = 7L;
    rules =
      [ { Fault.target = Fault.All; fault = Fault.Transient_faults { p = 0.3; recover_ns = 200_000 } } ];
  }

(* ---------------------- digests ---------------------- *)

let test_digest_stability () =
  let g = small_grid () in
  let p = (Grid.points g).(0) in
  let d = Sweep.point_digest ~engine:`Virtual ~code_rev:"r1" g p in
  Alcotest.(check string) "pure function of the point"
    d
    (Sweep.point_digest ~engine:`Virtual ~code_rev:"r1" g p);
  let differs name d' = Alcotest.(check bool) name true (d <> d') in
  differs "engine in key" (Sweep.point_digest ~engine:`Compiled ~code_rev:"r1" g p);
  differs "code_rev in key" (Sweep.point_digest ~engine:`Virtual ~code_rev:"r2" g p);
  differs "seed in key"
    (Sweep.point_digest ~engine:`Virtual ~code_rev:"r1" g { p with Grid.seed = 99L });
  differs "policy in key"
    (Sweep.point_digest ~engine:`Virtual ~code_rev:"r1" g { p with Grid.policy = "MET" });
  differs "jitter in key"
    (Sweep.point_digest ~engine:`Virtual ~code_rev:"r1" { g with Grid.jitter = 0.5 } p);
  differs "fault plan in key"
    (Sweep.point_digest ~engine:`Virtual ~code_rev:"r1"
       { g with Grid.fault = Some transient_plan }
       p);
  (* but not the index: a grown grid reuses previously cached rows *)
  Alcotest.(check string) "index not in key" d
    (Sweep.point_digest ~engine:`Virtual ~code_rev:"r1" g { p with Grid.index = 1000 });
  Alcotest.(check bool) "digest_of_parts is injective on part boundaries" true
    (Cache.digest_of_parts [ "ab"; "c" ] <> Cache.digest_of_parts [ "a"; "bc" ])

(* The v2 digest must separate rows by interconnect: an Ideal-fabric
   point and a Bus-fabric point of the otherwise identical grid may
   not share a cache entry, and distinct bus parameters may not share
   one either.  (The v1 -> v2 tag bump itself keeps pre-fabric rows
   from ever being served to either.) *)
let test_digest_fabric_conflict () =
  let module Fabric = Dssoc_soc.Fabric in
  let with_fab f =
    let g = small_grid () in
    { g with Grid.configs = List.map (fun (l, c) -> (l, Config.with_fabric f c)) g.Grid.configs }
  in
  let digest g = Sweep.point_digest ~engine:`Virtual ~code_rev:"r1" g (Grid.points g).(0) in
  let ideal = digest (small_grid ()) in
  let bus spec =
    match Fabric.of_spec spec with
    | Ok f -> digest (with_fab f)
    | Error msg -> Alcotest.fail msg
  in
  let contended = bus "bus:bw=200MB/s,fifo=2" in
  Alcotest.(check bool) "ideal vs bus fabric differ" true (ideal <> contended);
  Alcotest.(check bool) "bus bandwidth in key" true (contended <> bus "bus:bw=100MB/s,fifo=2");
  Alcotest.(check bool) "fifo depth in key" true (contended <> bus "bus:bw=200MB/s,fifo=3");
  Alcotest.(check bool) "hop latency in key" true
    (contended <> bus "bus:bw=200MB/s,fifo=2,hop=50ns");
  Alcotest.(check bool) "topology in key" true
    (contended <> bus "bus:bw=200MB/s,fifo=2,hops=mesh2x2");
  Alcotest.(check string) "explicit ideal spec digests like the default" ideal
    (digest (with_fab Fabric.Ideal))

let test_row_codec_roundtrip () =
  let g = small_grid ~jitter:0.03 ~replicates:1 () in
  let rows = (Sweep.run ~jobs:1 g).Sweep.rows in
  List.iter
    (fun (r : Sweep.row) ->
      match Sweep.row_of_payload (Sweep.row_payload r) with
      | Error e -> Alcotest.fail e
      | Ok r' ->
        Alcotest.(check bool) "structural equality (bit-exact floats)" true (compare r r' = 0);
        Alcotest.(check string) "identical CSV rendering" (Sweep.csv_row r) (Sweep.csv_row r'))
    rows;
  (* the Aborted message survives even though the CSV verdict column
     drops it *)
  let aborted = { (List.hd rows) with Sweep.verdict = Stats.Aborted "fft busy; no fallback" } in
  match Sweep.row_of_payload (Sweep.row_payload aborted) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check bool) "aborted message preserved" true (compare aborted r' = 0)

(* ---------------------- cache store ---------------------- *)

let test_cache_conflict () =
  let dir = tmp_dir () in
  let c = Cache.open_ ~code_rev:"t" ~dir () in
  Cache.add c ~digest:"d1" {|{"v":"a"}|};
  Cache.add c ~digest:"d1" {|{"v": "a"}|} (* equivalent re-add is a no-op *);
  Alcotest.(check int) "one entry" 1 (Cache.size c);
  Alcotest.(check bool) "conflicting re-add raises" true
    (match Cache.add c ~digest:"d1" {|{"v":"b"}|} with
    | () -> false
    | exception Cache.Conflict _ -> true);
  Alcotest.(check bool) "non-JSON payload rejected" true
    (match Cache.add c ~digest:"d2" "not json" with
    | () -> false
    | exception Invalid_argument _ -> true);
  Cache.close c;
  (* a second handle sees the persisted row *)
  let c2 = Cache.open_ ~readonly:true ~code_rev:"t" ~dir () in
  Alcotest.(check (option string)) "persisted" (Some {|{"v":"a"}|}) (Cache.find c2 ~digest:"d1");
  Alcotest.(check bool) "read-only handle rejects writes" true
    (match Cache.add c2 ~digest:"d2" {|"x"|} with
    | () -> false
    | exception Invalid_argument _ -> true);
  Cache.close c2

let test_cache_torn_final_line () =
  (* a kill mid-append leaves a truncated final line: loading must
     drop that line (it gets re-evaluated) and keep every whole row *)
  let dir = tmp_dir () in
  let c = Cache.open_ ~code_rev:"t" ~dir () in
  Cache.add c ~digest:"d1" {|{"v":"a"}|};
  Cache.add c ~digest:"d2" {|{"v":"b"}|};
  Cache.close c;
  let shard =
    match Array.to_list (Sys.readdir dir) with
    | [ f ] -> Filename.concat dir f
    | l -> Alcotest.failf "expected one shard file, got %d" (List.length l)
  in
  let whole = In_channel.with_open_bin shard In_channel.input_all in
  (* tear the final append mid-payload, no trailing newline *)
  let torn = String.sub whole 0 (String.length whole - 8) in
  Out_channel.with_open_bin shard (fun oc -> Out_channel.output_string oc torn);
  let c2 = Cache.open_ ~readonly:true ~code_rev:"t" ~dir () in
  Alcotest.(check int) "whole rows survive" 1 (Cache.size c2);
  Alcotest.(check (option string)) "first row intact" (Some {|{"v":"a"}|})
    (Cache.find c2 ~digest:"d1");
  Alcotest.(check (option string)) "torn row dropped" None (Cache.find c2 ~digest:"d2");
  Cache.close c2;
  (* corruption that is NOT the final line still fails loudly *)
  Out_channel.with_open_bin shard (fun oc ->
      Out_channel.output_string oc ("{broken\n" ^ whole));
  Alcotest.(check bool) "mid-file corruption still raises" true
    (match Cache.open_ ~readonly:true ~code_rev:"t" ~dir () with
    | c -> Cache.close c; false
    | exception Cache.Conflict _ -> true)

let warm_cold_roundtrip ~engine ?fault () =
  let dir = tmp_dir () in
  let g = small_grid ?fault () in
  let cold_t, cold =
    let cache = Cache.open_ ~code_rev:"t" ~dir () in
    Fun.protect
      ~finally:(fun () -> Cache.close cache)
      (fun () -> Sweep.run_stats ~jobs:2 ~engine ~cache g)
  in
  Alcotest.(check int) "cold: all misses" (Grid.size g) cold.Sweep.cache_misses;
  Alcotest.(check int) "cold: no hits" 0 cold.Sweep.cache_hits;
  (* a fresh handle = a separate process resuming the campaign *)
  let warm_t, warm =
    let cache = Cache.open_ ~code_rev:"t" ~dir () in
    Fun.protect
      ~finally:(fun () -> Cache.close cache)
      (fun () -> Sweep.run_stats ~jobs:2 ~engine ~cache g)
  in
  Alcotest.(check int) "warm: all hits" (Grid.size g) warm.Sweep.cache_hits;
  Alcotest.(check int) "warm: no misses" 0 warm.Sweep.cache_misses;
  Alcotest.(check string) "warm CSV byte-identical (obs and fault columns included)"
    (Sweep.to_csv cold_t) (Sweep.to_csv warm_t);
  Alcotest.(check string) "warm JSON byte-identical"
    (Json.to_string (Sweep.to_json cold_t))
    (Json.to_string (Sweep.to_json warm_t));
  Alcotest.(check bool) "rows structurally bit-identical" true
    (compare cold_t.Sweep.rows warm_t.Sweep.rows = 0)

let test_cache_roundtrip_virtual () = warm_cold_roundtrip ~engine:`Virtual ()
let test_cache_roundtrip_compiled () = warm_cold_roundtrip ~engine:`Compiled ()
let test_cache_roundtrip_fault () = warm_cold_roundtrip ~engine:`Virtual ~fault:transient_plan ()

let test_cache_revision_isolation () =
  (* Rows computed by one code revision are never served to another. *)
  let dir = tmp_dir () in
  let g = small_grid ~replicates:1 () in
  let run rev =
    let cache = Cache.open_ ~code_rev:rev ~dir () in
    Fun.protect
      ~finally:(fun () -> Cache.close cache)
      (fun () -> snd (Sweep.run_stats ~jobs:1 ~cache g))
  in
  ignore (run "rev-a");
  let s = run "rev-b" in
  Alcotest.(check int) "other revision: all misses" (Grid.size g) s.Sweep.cache_misses;
  let s' = run "rev-a" in
  Alcotest.(check int) "original revision still warm" (Grid.size g) s'.Sweep.cache_hits

(* ---------------------- shard / merge ---------------------- *)

let shard_merge_equality ~engine () =
  let dir = tmp_dir () in
  let g = small_grid () in
  let n = 2 in
  for i = 0 to n - 1 do
    let cache = Cache.open_ ~shard:(i, n) ~code_rev:"t" ~dir () in
    Fun.protect
      ~finally:(fun () -> Cache.close cache)
      (fun () ->
        let t, s = Sweep.run_stats ~jobs:2 ~engine ~cache ~shard:(i, n) g in
        Alcotest.(check int)
          (Printf.sprintf "shard %d/%d row count" i n)
          (List.length t.Sweep.rows) s.Sweep.points;
        List.iter
          (fun (r : Sweep.row) ->
            Alcotest.(check int) "only this shard's indices" i (r.Sweep.index mod n))
          t.Sweep.rows)
  done;
  let cache = Cache.open_ ~readonly:true ~code_rev:"t" ~dir () in
  Fun.protect
    ~finally:(fun () -> Cache.close cache)
    (fun () ->
      match Sweep.of_cache ~engine ~cache g with
      | Error e -> Alcotest.fail e
      | Ok merged ->
        let single = Sweep.run ~jobs:1 ~engine g in
        Alcotest.(check string) "merged CSV byte-identical to single-process run"
          (Sweep.to_csv single) (Sweep.to_csv merged);
        Alcotest.(check string) "merged JSON byte-identical"
          (Json.to_string (Sweep.to_json single))
          (Json.to_string (Sweep.to_json merged)))

let test_shard_merge_virtual () = shard_merge_equality ~engine:`Virtual ()
let test_shard_merge_compiled () = shard_merge_equality ~engine:`Compiled ()

let test_merge_reports_missing () =
  let dir = tmp_dir () in
  let g = small_grid () in
  (* only shard 0 of 2 has run *)
  let cache = Cache.open_ ~shard:(0, 2) ~code_rev:"t" ~dir () in
  Fun.protect
    ~finally:(fun () -> Cache.close cache)
    (fun () -> ignore (Sweep.run_stats ~jobs:1 ~cache ~shard:(0, 2) g));
  let cache = Cache.open_ ~readonly:true ~code_rev:"t" ~dir () in
  Fun.protect
    ~finally:(fun () -> Cache.close cache)
    (fun () ->
      match Sweep.of_cache ~cache g with
      | Ok _ -> Alcotest.fail "expected missing points"
      | Error msg ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "counts the missing points" true
          (contains msg "8 of 16 points missing"))

let test_on_row_streaming () =
  let g = small_grid ~replicates:1 () in
  let seen = ref [] in
  let t = Sweep.run ~jobs:2 ~on_row:(fun r -> seen := r :: !seen) g in
  let streamed = List.sort (fun (a : Sweep.row) b -> compare a.Sweep.index b.Sweep.index) !seen in
  Alcotest.(check bool) "every row streamed exactly once (any completion order)" true
    (compare streamed t.Sweep.rows = 0)

(* ---------------------- frontier ---------------------- *)

let obj m e c = { Frontier.makespan_ns = m; energy_mj = e; completed_fraction = c }

let test_dominates () =
  let check name exp a b = Alcotest.(check bool) name exp (Frontier.dominates a b) in
  check "strictly better everywhere" true (obj 1 1.0 1.0) (obj 2 2.0 0.5);
  check "equal vectors do not dominate" false (obj 1 1.0 1.0) (obj 1 1.0 1.0);
  check "tie on two axes, better on one" true (obj 1 1.0 1.0) (obj 1 1.0 0.9);
  check "trade-off does not dominate" false (obj 1 2.0 1.0) (obj 2 1.0 1.0);
  check "completed fraction is maximized" false (obj 1 1.0 0.5) (obj 1 1.0 0.6)

let test_frontier_tracker () =
  let t = Frontier.create () in
  Frontier.add t ~id:0 (obj 10 10.0 1.0);
  Frontier.add t ~id:1 (obj 5 20.0 1.0) (* trade-off: stays *);
  Frontier.add t ~id:2 (obj 12 11.0 1.0) (* dominated by 0 *);
  Frontier.add t ~id:3 (obj 10 10.0 1.0) (* duplicate of 0: both stay *);
  Alcotest.(check (list int)) "frontier ids" [ 0; 1; 3 ] (Frontier.frontier_ids t);
  Alcotest.(check int) "all entries kept" 4 (List.length (Frontier.entries t))

(* The qcheck property behind adaptive soundness: whatever the
   objective landscape, successive halving never prunes an arm that
   owns a point on the Pareto frontier of everything evaluated so
   far. *)
let test_halving_never_prunes_frontier =
  let gen =
    QCheck.make
      ~print:(fun (arms, reps, cells) ->
        Printf.sprintf "arms=%d reps=%d cells=%s" arms reps
          (String.concat ";"
             (List.map (fun (m, e, c) -> Printf.sprintf "(%d,%d,%d)" m e c) cells)))
      QCheck.Gen.(
        int_range 1 6 >>= fun arms ->
        int_range 1 6 >>= fun reps ->
        (* small value ranges on purpose: ties and duplicated vectors
           are the interesting corner *)
        list_size (return (arms * reps)) (triple (int_bound 4) (int_bound 4) (int_bound 2))
        >>= fun cells -> return (arms, reps, cells))
  in
  QCheck.Test.make ~name:"successive halving never prunes a frontier arm" ~count:200 gen
    (fun (arms, reps, cells) ->
      let cells = Array.of_list cells in
      let objective (a, r) =
        let m, e, c = cells.((a * reps) + r) in
        obj m (float_of_int e) (float_of_int c /. 2.0)
      in
      let eval pairs = Array.map objective pairs in
      let outcome =
        Frontier.successive_halving ~arms ~replicates:reps ~seed:11L ~eval
          ~objectives:Fun.id ()
      in
      (* replay the rung schedule and re-derive each prune decision's
         frontier independently *)
      let evaluated = Array.of_list outcome.Frontier.evaluated in
      let pos = ref 0 in
      let seen = ref [] in
      let sound = ref true in
      let prev_cum = ref 0 in
      List.iter
        (fun (rung : Frontier.rung) ->
          let budget = rung.Frontier.cumulative_replicates - !prev_cum in
          prev_cum := rung.Frontier.cumulative_replicates;
          let count = List.length rung.Frontier.arms_in * budget in
          for k = !pos to !pos + count - 1 do
            let a, r, o = evaluated.(k) in
            seen := ((a, r), o) :: !seen
          done;
          pos := !pos + count;
          if rung.Frontier.pruned <> [] then begin
            let all = !seen in
            let frontier_arms =
              List.filter_map
                (fun ((a, _), o) ->
                  if List.exists (fun (_, o') -> Frontier.dominates o' o) all then None
                  else Some a)
                all
              |> List.sort_uniq compare
            in
            if List.exists (fun a -> List.mem a frontier_arms) rung.Frontier.pruned then
              sound := false
          end)
        outcome.Frontier.rungs;
      (* and the whole schedule was consumed *)
      !sound && !pos = Array.length evaluated
      (* determinism: same inputs, same outcome *)
      && compare outcome
           (Frontier.successive_halving ~arms ~replicates:reps ~seed:11L ~eval
              ~objectives:Fun.id ())
         = 0)

(* ---------------------- adaptive sweeps ---------------------- *)

(* A grid with deliberately dominated arms: the same single
   configuration runs one light workload and three increasingly heavy
   ones, so every heavy cell is strictly dominated (more tasks = more
   makespan and more energy at equal completed fraction) and pruned
   early. *)
let adaptive_grid () =
  let c = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let tx = Reference_apps.wifi_tx () in
  let rd = Reference_apps.range_detection () in
  Grid.make ~label:"adaptive" ~replicates:8 ~base_seed:42L ~jitter:0.01
    ~configs:[ (c.Config.label, c) ]
    ~policies:[ "FRFS"; "MET"; "EFT" ]
    ~workloads:
      [
        Grid.fixed_workload ~label:"light" (Workload.validation [ (tx, 1) ]);
        Grid.fixed_workload ~label:"mid" (Workload.validation [ (tx, 1); (rd, 1) ]);
        Grid.fixed_workload ~label:"heavy" (Workload.validation [ (tx, 2); (rd, 2) ]);
        Grid.fixed_workload ~label:"heavier" (Workload.validation [ (tx, 4); (rd, 4) ]);
      ]
    ()

let frontier_key (r : Sweep.row) = (r.Sweep.config, r.Sweep.policy, r.Sweep.workload, r.Sweep.replicate)

let test_adaptive_budget_and_frontier () =
  let g = adaptive_grid () in
  let a = Sweep.run_adaptive ~jobs:2 g in
  let evaluated = a.Sweep.a_stats.Sweep.points in
  Alcotest.(check int) "exhaustive point count" (Grid.size g) a.Sweep.a_exhaustive_points;
  Alcotest.(check bool)
    (Printf.sprintf "evaluates at most half the grid (%d of %d)" evaluated
       a.Sweep.a_exhaustive_points)
    true
    (2 * evaluated <= a.Sweep.a_exhaustive_points);
  (* the reported frontier must match the exhaustive run's frontier *)
  let exhaustive = Sweep.run ~jobs:2 g in
  let frontier_of rows =
    let objs = List.map (fun r -> (r, Sweep.objectives_of_row r)) rows in
    List.filter_map
      (fun (r, o) ->
        if List.exists (fun (_, o') -> Frontier.dominates o' o) objs then None
        else Some (frontier_key r))
      objs
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "adaptive frontier = exhaustive frontier" true
    (frontier_of exhaustive.Sweep.rows
    = List.sort_uniq compare (List.map frontier_key a.Sweep.a_frontier));
  (* adaptive runs replay deterministically *)
  let a' = Sweep.run_adaptive ~jobs:1 g in
  Alcotest.(check string) "deterministic across jobs" (Sweep.to_csv a.Sweep.a_table)
    (Sweep.to_csv a'.Sweep.a_table)

let test_adaptive_shares_cache_with_exhaustive () =
  let dir = tmp_dir () in
  let g = adaptive_grid () in
  let cache = Cache.open_ ~code_rev:"t" ~dir () in
  let a =
    Fun.protect
      ~finally:(fun () -> Cache.close cache)
      (fun () -> Sweep.run_adaptive ~jobs:2 ~cache g)
  in
  (* an exhaustive run over the same grid reuses every adaptive row *)
  let cache = Cache.open_ ~code_rev:"t" ~dir () in
  Fun.protect
    ~finally:(fun () -> Cache.close cache)
    (fun () ->
      let _, s = Sweep.run_stats ~jobs:2 ~cache g in
      Alcotest.(check int) "every adaptive row reused" a.Sweep.a_stats.Sweep.points
        s.Sweep.cache_hits;
      Alcotest.(check int) "only the pruned points computed"
        (Grid.size g - a.Sweep.a_stats.Sweep.points)
        s.Sweep.cache_misses)

let () =
  Alcotest.run "distributed"
    [
      ( "digest",
        [
          Alcotest.test_case "stability and sensitivity" `Quick test_digest_stability;
          Alcotest.test_case "fabric separates rows" `Quick test_digest_fabric_conflict;
          Alcotest.test_case "row codec round-trip" `Quick test_row_codec_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "conflict detection and persistence" `Quick test_cache_conflict;
          Alcotest.test_case "torn final line tolerated" `Quick test_cache_torn_final_line;
          Alcotest.test_case "warm run byte-identical (virtual)" `Slow test_cache_roundtrip_virtual;
          Alcotest.test_case "warm run byte-identical (compiled)" `Slow test_cache_roundtrip_compiled;
          Alcotest.test_case "warm run byte-identical (fault grid)" `Slow test_cache_roundtrip_fault;
          Alcotest.test_case "code_rev isolation" `Slow test_cache_revision_isolation;
        ] );
      ( "shard",
        [
          Alcotest.test_case "merge = single process (virtual)" `Slow test_shard_merge_virtual;
          Alcotest.test_case "merge = single process (compiled)" `Slow test_shard_merge_compiled;
          Alcotest.test_case "merge reports missing shards" `Slow test_merge_reports_missing;
          Alcotest.test_case "on_row streams every row" `Quick test_on_row_streaming;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "tracker" `Quick test_frontier_tracker;
          QCheck_alcotest.to_alcotest test_halving_never_prunes_frontier;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "budget and frontier vs exhaustive" `Slow
            test_adaptive_budget_and_frontier;
          Alcotest.test_case "shares cache with exhaustive runs" `Slow
            test_adaptive_shares_cache_with_exhaustive;
        ] );
    ]
