(* Shared-interconnect (fabric) tests.

   The fabric layer arbitrates every accelerator DMA stream through
   one processor-shared link with a bounded admission FIFO.  Its
   contract has three legs:

   - [Fabric.Ideal] is the default and must replay the legacy
     per-device DMA timings byte-for-byte on every engine;
   - under a [Bus] the virtual and compiled engines must still agree
     byte-for-byte (records CSV, report, final stores) — contention
     is part of the deterministic replay contract;
   - the native engine, whose clock measures this host, must agree
     functionally: same task population, same stores, same stream
     count (stream admission is jitter- and clock-invariant), with
     makespan only in a coarse band. *)

module Fabric = Dssoc_soc.Fabric
module Dma = Dssoc_soc.Dma
module Pe = Dssoc_soc.Pe
module Config = Dssoc_soc.Config
module Task = Dssoc_runtime.Task
module Emulator = Dssoc_runtime.Emulator
module Compiled = Dssoc_runtime.Compiled_engine
module Scheduler = Dssoc_runtime.Scheduler
module Engine_core = Dssoc_runtime.Engine_core
module Stats = Dssoc_runtime.Stats
module App_spec = Dssoc_apps.App_spec
module Store = Dssoc_apps.Store
module Kernels = Dssoc_apps.Kernels
module Reference_apps = Dssoc_apps.Reference_apps
module Workload = Dssoc_apps.Workload
module Prng = Dssoc_util.Prng

let qtest = QCheck_alcotest.to_alcotest
let fabric_of spec = Result.get_ok (Fabric.of_spec spec)

(* ---------------- spec parsing ---------------- *)

let test_of_spec_ideal () =
  Alcotest.(check bool) "ideal" true (fabric_of "ideal" = Fabric.Ideal);
  Alcotest.(check bool) "empty" true (fabric_of "" = Fabric.Ideal)

let test_of_spec_bus () =
  (match fabric_of "bus:" with
  | Fabric.Bus b ->
    Alcotest.(check bool) "defaults" true (b = Fabric.default_bus)
  | Fabric.Ideal -> Alcotest.fail "bus: parsed as Ideal");
  (match fabric_of "bus:bw=500MB/s,fifo=4,hop=20ns" with
  | Fabric.Bus b ->
    Alcotest.(check (float 1e-9)) "bw" 500.0 b.Fabric.bw_mb_s;
    Alcotest.(check int) "fifo" 4 b.Fabric.fifo_depth;
    Alcotest.(check int) "hop" 20 b.Fabric.hop_ns;
    Alcotest.(check bool) "crossbar" true (b.Fabric.topology = Fabric.Crossbar)
  | Fabric.Ideal -> Alcotest.fail "bus spec parsed as Ideal");
  (match fabric_of "bus:bw=2GB/s,hops=mesh2x2" with
  | Fabric.Bus b ->
    Alcotest.(check (float 1e-9)) "GB/s scaled" 2000.0 b.Fabric.bw_mb_s;
    Alcotest.(check bool) "mesh" true (b.Fabric.topology = Fabric.Mesh (2, 2))
  | Fabric.Ideal -> Alcotest.fail "mesh spec parsed as Ideal")

let test_of_spec_errors () =
  List.iter
    (fun spec ->
      match Fabric.of_spec spec with
      | Ok _ -> Alcotest.failf "%S parsed" spec
      | Error msg -> Alcotest.(check bool) (spec ^ ": has message") true (msg <> ""))
    [
      "ring:bw=1";
      "bus:bw=0MB/s";
      "bus:bw=nope";
      "bus:fifo=0";
      "bus:fifo=-2";
      "bus:hop=-1";
      "bus:hops=mesh0x2";
      "bus:hops=torus";
      "bus:color=red";
      "bus:bw";
    ]

let test_fingerprint_roundtrip () =
  List.iter
    (fun spec ->
      let f = fabric_of spec in
      Alcotest.(check bool)
        (spec ^ ": of_spec (fingerprint f) = f")
        true
        (fabric_of (Fabric.fingerprint f) = f))
    [ "ideal"; "bus:"; "bus:bw=125MB/s,fifo=2"; "bus:hop=50ns,hops=mesh2x3" ]

(* ---------------- pricing primitives ---------------- *)

let test_hops () =
  List.iter
    (fun i ->
      Alcotest.(check int) "crossbar is one hop" 1 (Fabric.hops Fabric.Crossbar ~pe_index:i))
    [ 0; 1; 7 ];
  (* mesh2x2 slots: (0,0)=1, (1,0)=2, (0,1)=2, (1,1)=3, then wraps *)
  List.iter
    (fun (i, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "mesh2x2 pe %d" i)
        expect
        (Fabric.hops (Fabric.Mesh (2, 2)) ~pe_index:i))
    [ (0, 1); (1, 2); (2, 2); (3, 3); (4, 1) ]

let test_demand_ns () =
  let b = { Fabric.default_bus with Fabric.bw_mb_s = 1000.0 } in
  Alcotest.(check int) "zero bytes" 0 (Fabric.demand_ns b ~bytes:0);
  Alcotest.(check int) "negative bytes" 0 (Fabric.demand_ns b ~bytes:(-4));
  (* 1000 MB/s = 1 byte/ns *)
  Alcotest.(check int) "8192 bytes at 1 GB/s" 8192 (Fabric.demand_ns b ~bytes:8192);
  let slow = { b with Fabric.bw_mb_s = 1e-6 } in
  Alcotest.check_raises "overflow guarded"
    (Invalid_argument "Fabric.demand_ns: duration overflows")
    (fun () -> ignore (Fabric.demand_ns slow ~bytes:max_int))

(* The satellite bugfix: Dma.transfer_ns used to wrap around on huge
   transfers; now it refuses them and stays bit-identical in range. *)
let test_dma_transfer_overflow () =
  let d = Dma.make ~latency_ns:4_000 ~bandwidth_mb_s:400.0 in
  Alcotest.(check bool) "in-range positive" true (Dma.transfer_ns d ~bytes:8192 > 4_000);
  Alcotest.check_raises "overflow guarded"
    (Invalid_argument "Dma.transfer_ns: duration overflows")
    (fun () -> ignore (Dma.transfer_ns d ~bytes:max_int))

(* ---------------- engine-differential helpers ---------------- *)

let policy_of name = Result.get_ok (Scheduler.find name)

let check_csv_identical label vcsv ccsv =
  if not (String.equal vcsv ccsv) then begin
    let vl = String.split_on_char '\n' vcsv and cl = String.split_on_char '\n' ccsv in
    let rec first i = function
      | a :: ta, b :: tb ->
        if String.equal a b then first (i + 1) (ta, tb)
        else Printf.sprintf "line %d: virtual %S vs compiled %S" i a b
      | a :: _, [] -> Printf.sprintf "line %d only in virtual: %S" i a
      | [], b :: _ -> Printf.sprintf "line %d only in compiled: %S" i b
      | [], [] -> "equal length, no differing line (?)"
    in
    Alcotest.failf "%s: records_csv diverges at %s" label (first 0 (vl, cl))
  end

let check_stores_identical label (vi : Task.instance array) (ci : Task.instance array) =
  Alcotest.(check int) (label ^ ": same instance count") (Array.length vi) (Array.length ci);
  Array.iteri
    (fun i (v : Task.instance) ->
      List.iter
        (fun var ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: instance %d var %s byte-identical" label i var)
            true
            (Bytes.equal (Store.get_raw v.Task.store var) (Store.get_raw ci.(i).Task.store var)))
        (Store.names v.Task.store))
    vi

let run_virtual ?(jitter = 0.03) ?(depth = 0) ~policy ~config ~wl () =
  Result.get_ok
    (Emulator.run_detailed
       ~engine:(Emulator.virtual_seeded ~jitter ~reservation_depth:depth 7L)
       ~policy ~config ~workload:(wl ()) ())

let run_compiled ?(jitter = 0.03) ?(depth = 0) ~policy ~config ~wl () =
  let plan = Compiled.compile ~config ~workload:(wl ()) ~policy:(policy_of policy) () in
  Compiled.run_detailed plan { Engine_core.seed = 7L; jitter; reservation_depth = depth }

(* ---------------- contended differential matrix ---------------- *)

(* Three contention shapes: a saturating two-accelerator mix behind a
   starved single-entry FIFO, the fig9-style mix on the default bus,
   and a hop-latency-dominated bus with a small FIFO. *)
let contended_scenarios =
  [
    ( "two-fft-saturated",
      (fun () -> Config.zcu102_cores_ffts ~cores:2 ~ffts:2),
      fabric_of "bus:bw=100MB/s,fifo=1",
      fun () ->
        Workload.validation
          [ (Reference_apps.pulse_doppler (), 1); (Reference_apps.wifi_rx (), 1) ] );
    ( "fig9-mix-default-bus",
      (fun () -> Config.zcu102_cores_ffts ~cores:3 ~ffts:2),
      fabric_of "bus:",
      fun () ->
        Workload.validation
          [ (Reference_apps.pulse_doppler (), 1); (Reference_apps.range_detection (), 2);
            (Reference_apps.wifi_tx (), 2); (Reference_apps.wifi_rx (), 2) ] );
    ( "hop-latency-bus",
      (fun () -> Config.zcu102_cores_ffts ~cores:2 ~ffts:1),
      fabric_of "bus:bw=500MB/s,fifo=2,hop=50ns",
      fun () ->
        Workload.validation
          [ (Reference_apps.range_detection (), 2); (Reference_apps.wifi_rx (), 1) ] );
  ]

let matrix_policies = [ "FRFS"; "MET"; "EFT"; "RANDOM"; "POWER" ]

let test_contended_virtual_compiled_matrix () =
  List.iter
    (fun (scen, config_fn, fabric, wl) ->
      let config = Config.with_fabric fabric (config_fn ()) in
      List.iter
        (fun policy ->
          let label = scen ^ "/" ^ policy in
          let vr, vi = run_virtual ~policy ~config ~wl () in
          let cr, ci = run_compiled ~policy ~config ~wl () in
          check_csv_identical label (Stats.records_csv vr) (Stats.records_csv cr);
          Alcotest.(check bool) (label ^ ": same report") true (vr = cr);
          check_stores_identical label vi ci;
          Alcotest.(check bool)
            (label ^ ": streams flowed")
            true
            (vr.Stats.fabric.Stats.dma_streams > 0))
        matrix_policies)
    contended_scenarios

(* Traced lowering parity under contention: the fabric hooks
   (stream admissions with their stall times, stall-queue events, the
   occupancy gauge and stall histogram) must replay byte-for-byte, on
   top of the untraced record parity above. *)
let test_contended_obs_parity () =
  let module Obs = Dssoc_obs.Obs in
  let module Analyze = Dssoc_obs.Analyze in
  let traced () =
    Obs.make ~sink:(Obs.Sink.ring ~capacity:(1 lsl 18) ()) ~metrics:(Obs.Metrics.create ()) ()
  in
  let metrics_text obs =
    match Obs.metrics obs with
    | Some m -> Format.asprintf "%a" Obs.Metrics.pp m
    | None -> ""
  in
  List.iter
    (fun (scen, config_fn, fabric, wl) ->
      let config = Config.with_fabric fabric (config_fn ()) in
      List.iter
        (fun policy ->
          let label = scen ^ "/" ^ policy in
          let vobs = traced () and cobs = traced () in
          let vr, _ =
            Result.get_ok
              (Emulator.run_detailed
                 ~engine:(Emulator.virtual_seeded ~jitter:0.03 7L)
                 ~policy ~obs:vobs ~config ~workload:(wl ()) ())
          in
          let plan = Compiled.compile ~config ~workload:(wl ()) ~policy:(policy_of policy) () in
          let cr =
            Compiled.run ~obs:cobs plan
              { Engine_core.seed = 7L; jitter = 0.03; reservation_depth = 0 }
          in
          Alcotest.(check int) (label ^ ": no dropped events") 0
            (Obs.Sink.dropped (Obs.sink vobs));
          Alcotest.(check string)
            (label ^ ": event JSONL byte-identical")
            (Obs.to_jsonl (Obs.recorded_events vobs))
            (Obs.to_jsonl (Obs.recorded_events cobs));
          Alcotest.(check string)
            (label ^ ": metrics identical")
            (metrics_text vobs) (metrics_text cobs);
          Alcotest.(check int) (label ^ ": same makespan") vr.Stats.makespan_ns
            cr.Stats.makespan_ns;
          let admissions =
            List.length
              (List.filter
                 (fun (e : Obs.event) ->
                   match e.Obs.body with Obs.Stream_admitted _ -> true | _ -> false)
                 (Obs.recorded_events cobs))
          in
          Alcotest.(check int)
            (label ^ ": one admission event per DMA stream")
            cr.Stats.fabric.Stats.dma_streams admissions;
          let cp = Analyze.critical_path (Analyze.of_events (Obs.recorded_events cobs)) in
          Alcotest.(check int) (label ^ ": crit path = makespan") cr.Stats.makespan_ns
            cp.Analyze.cp_length_ns)
        matrix_policies)
    contended_scenarios

let test_contended_native_functional_matrix () =
  List.iter
    (fun (scen, config_fn, fabric, wl) ->
      let config = Config.with_fabric fabric (config_fn ()) in
      List.iter
        (fun policy ->
          let label = scen ^ "/" ^ policy ^ "/native" in
          let vr, vi = run_virtual ~jitter:0.0 ~policy ~config ~wl () in
          let nr, ni =
            Result.get_ok
              (Emulator.run_detailed
                 ~engine:(Emulator.native_seeded 7L)
                 ~policy ~config ~workload:(wl ()) ())
          in
          Alcotest.(check int) (label ^ ": same task count") vr.Stats.task_count
            nr.Stats.task_count;
          Alcotest.(check int)
            (label ^ ": same record count")
            (List.length vr.Stats.records)
            (List.length nr.Stats.records);
          (* Which PE a task lands on is timing, so the native stream
             count legitimately differs from the virtual one; what must
             hold is the ledger invariant — the FIFO depth bounded the
             in-flight set.  Stalls and stall-ns are wall-clock facts
             on the native side and are not compared. *)
          let fifo =
            match fabric with Fabric.Bus b -> b.Fabric.fifo_depth | Fabric.Ideal -> max_int
          in
          Alcotest.(check bool)
            (label ^ ": native in-flight bounded by FIFO")
            true
            (nr.Stats.fabric.Stats.max_inflight_streams <= fifo);
          let ratio =
            float_of_int nr.Stats.makespan_ns /. float_of_int (max 1 vr.Stats.makespan_ns)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: makespan ratio %.3f in band" label ratio)
            true
            (ratio > 1e-3 && ratio < 1e3);
          check_stores_identical label vi ni)
        [ "FRFS"; "EFT" ])
    contended_scenarios

(* ---------------- contention is visible and bounded ---------------- *)

let test_saturated_bus_stalls_and_slows () =
  let config_fn () = Config.zcu102_cores_ffts ~cores:2 ~ffts:2 in
  let wl () =
    Workload.validation
      [ (Reference_apps.pulse_doppler (), 1); (Reference_apps.wifi_rx (), 1) ]
  in
  let ideal, _ = run_virtual ~policy:"EFT" ~config:(config_fn ()) ~wl () in
  let contended, _ =
    run_virtual ~policy:"EFT"
      ~config:(Config.with_fabric (fabric_of "bus:bw=100MB/s,fifo=1") (config_fn ()))
      ~wl ()
  in
  Alcotest.(check bool) "ideal run reports no fabric activity" true
    (ideal.Stats.fabric = Stats.no_fabric);
  let f = contended.Stats.fabric in
  Alcotest.(check bool) "streams" true (f.Stats.dma_streams > 0);
  Alcotest.(check bool) "stalls observed" true (f.Stats.fabric_stalls > 0);
  Alcotest.(check bool) "stall time accumulated" true (f.Stats.fabric_stall_ns > 0);
  Alcotest.(check bool) "FIFO bound respected" true (f.Stats.max_inflight_streams <= 1);
  Alcotest.(check bool)
    (Printf.sprintf "contention slows the run (%d ns vs %d ns ideal)"
       contended.Stats.makespan_ns ideal.Stats.makespan_ns)
    true
    (contended.Stats.makespan_ns > ideal.Stats.makespan_ns)

let test_mesh_topology_virtual_only () =
  let config =
    Config.with_fabric (fabric_of "bus:bw=500MB/s,hop=100ns,hops=mesh2x2")
      (Config.zcu102_cores_ffts ~cores:2 ~ffts:2)
  in
  let wl () = Workload.validation [ (Reference_apps.range_detection (), 1) ] in
  (match
     Emulator.run ~engine:(Emulator.virtual_seeded 7L) ~config ~workload:(wl ()) ()
   with
  | Ok r -> Alcotest.(check bool) "virtual prices mesh hops" true (r.Stats.makespan_ns > 0)
  | Error e -> Alcotest.failf "virtual rejected mesh fabric: %s" e);
  match
    Emulator.run ~engine:(Emulator.compiled_seeded 7L) ~config ~workload:(wl ()) ()
  with
  | Error msg ->
    Alcotest.(check bool) "compiled names the lowering limit" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "compiled engine accepted a mesh fabric"

(* ---------------- random-DAG properties ---------------- *)

let () =
  Kernels.register_object "qfab.so"
    [
      ( "bump",
        fun store args ->
          ignore args;
          Store.set_i32 store "acc" (Store.get_i32 store "acc" + 1) );
    ]

(* Random DAGs with real data movement: sizes up to 4K samples give
   DMA phases of up to 32 KiB, enough to contend on a narrow bus. *)
let random_dag seed =
  let prng = Prng.create ~seed:(Int64.of_int (0xFAB + seed)) in
  let n = 3 + Prng.int prng 8 in
  let nodes =
    List.init n (fun i ->
        let preds =
          List.filteri (fun j _ -> j < i && Prng.bool prng) (List.init n (fun j -> j))
          |> List.map (Printf.sprintf "n%d")
        in
        let preds =
          if i > 0 && preds = [] && Prng.bool prng then [ Printf.sprintf "n%d" (i - 1) ]
          else preds
        in
        let platforms =
          { App_spec.platform = "cpu"; runfunc = "bump"; shared_object = None; cost_us = None }
          ::
          (if Prng.bool prng then
             [ { App_spec.platform = "fft"; runfunc = "bump"; shared_object = None;
                 cost_us = None } ]
           else [])
        in
        {
          App_spec.node_name = Printf.sprintf "n%d" i;
          arguments = [ "acc" ];
          predecessors = preds;
          successors = [];
          platforms;
          kernel_class = "generic";
          size = 1 + Prng.int prng 4096;
          bytes_in = 0;
          bytes_out = 0;
        })
  in
  App_spec.of_edges ~app_name:(Printf.sprintf "qfab%d" seed) ~shared_object:"qfab.so"
    ~variables:[ ("acc", { Store.bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = [] }) ]
    ~nodes

let qcheck_ideal_replays_legacy =
  (* [with_fabric Ideal] must be indistinguishable from an untouched
     config — byte-identical records and stores on the deterministic
     engines — for random DAGs, seeds and reservation depths. *)
  QCheck.Test.make ~name:"Ideal fabric replays legacy timings byte-for-byte" ~count:15
    QCheck.(make Gen.(pair (int_range 0 10_000) (pair (int_range 0 4) (int_range 0 2))))
    (fun (seed, (policy_ix, depth)) ->
      let spec = random_dag seed in
      let legacy = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
      let config = Config.with_fabric Fabric.Ideal legacy in
      let policy = List.nth matrix_policies policy_ix in
      let wl () = Workload.validation [ (spec, 2) ] in
      let params =
        { Engine_core.seed = Int64.of_int (seed + 1); jitter = 0.03; reservation_depth = depth }
      in
      let run cfg =
        Result.get_ok
          (Emulator.run_detailed ~engine:(Emulator.Virtual params) ~policy ~config:cfg
             ~workload:(wl ()) ())
      in
      let lr, li = run legacy in
      let ir, ii = run config in
      let plan = Compiled.compile ~config ~workload:(wl ()) ~policy:(policy_of policy) () in
      let cr, ci = Compiled.run_detailed plan params in
      if not (String.equal (Stats.records_csv lr) (Stats.records_csv ir)) then
        QCheck.Test.fail_reportf "seed %d: Ideal fabric changed virtual records" seed;
      if not (String.equal (Stats.records_csv lr) (Stats.records_csv cr)) then
        QCheck.Test.fail_reportf "seed %d: compiled diverged under Ideal fabric" seed;
      if ir.Stats.fabric <> Stats.no_fabric then
        QCheck.Test.fail_reportf "seed %d: Ideal fabric reported activity" seed;
      check_stores_identical "ideal-replay" li ii;
      check_stores_identical "ideal-replay-compiled" li ci;
      lr = ir && ir = cr)

let qcheck_contended_replay_and_fifo_bound =
  QCheck.Test.make ~name:"contended virtual = compiled; FIFO bounds in-flight" ~count:15
    QCheck.(make Gen.(pair (int_range 0 10_000) (pair (int_range 0 4) (int_range 1 3))))
    (fun (seed, (policy_ix, fifo)) ->
      let spec = random_dag seed in
      let fabric = fabric_of (Printf.sprintf "bus:bw=50MB/s,fifo=%d" fifo) in
      let config = Config.with_fabric fabric (Config.zcu102_cores_ffts ~cores:2 ~ffts:2) in
      let policy = List.nth matrix_policies policy_ix in
      let wl () = Workload.validation [ (spec, 2) ] in
      let params =
        { Engine_core.seed = Int64.of_int (seed + 1); jitter = 0.03; reservation_depth = 0 }
      in
      let vr, vi =
        Result.get_ok
          (Emulator.run_detailed ~engine:(Emulator.Virtual params) ~policy ~config
             ~workload:(wl ()) ())
      in
      let plan = Compiled.compile ~config ~workload:(wl ()) ~policy:(policy_of policy) () in
      let cr, ci = Compiled.run_detailed plan params in
      if not (String.equal (Stats.records_csv vr) (Stats.records_csv cr)) then
        QCheck.Test.fail_reportf "seed %d fifo %d: contended records diverge" seed fifo;
      check_stores_identical "contended" vi ci;
      let f = vr.Stats.fabric in
      if f.Stats.max_inflight_streams > fifo then
        QCheck.Test.fail_reportf "seed %d: %d in flight exceeds fifo %d" seed
          f.Stats.max_inflight_streams fifo;
      if f.Stats.fabric_stall_ns < 0 then QCheck.Test.fail_reportf "negative stall time";
      vr = cr)

let () =
  Alcotest.run "fabric"
    [
      ( "spec",
        [
          Alcotest.test_case "ideal and empty" `Quick test_of_spec_ideal;
          Alcotest.test_case "bus key=value forms" `Quick test_of_spec_bus;
          Alcotest.test_case "malformed specs rejected" `Quick test_of_spec_errors;
          Alcotest.test_case "fingerprint round-trips" `Quick test_fingerprint_roundtrip;
        ] );
      ( "pricing",
        [
          Alcotest.test_case "hop counts" `Quick test_hops;
          Alcotest.test_case "link demand" `Quick test_demand_ns;
          Alcotest.test_case "Dma.transfer_ns overflow guard" `Quick
            test_dma_transfer_overflow;
        ] );
      ( "contended matrix",
        [
          Alcotest.test_case "virtual = compiled byte-for-byte" `Slow
            test_contended_virtual_compiled_matrix;
          Alcotest.test_case "traced virtual = traced compiled (events + metrics)" `Slow
            test_contended_obs_parity;
          Alcotest.test_case "native functional agreement" `Slow
            test_contended_native_functional_matrix;
        ] );
      ( "contention",
        [
          Alcotest.test_case "saturated bus stalls and slows" `Quick
            test_saturated_bus_stalls_and_slows;
          Alcotest.test_case "mesh topology: virtual yes, compiled no" `Quick
            test_mesh_topology_virtual_only;
        ] );
      ( "properties",
        [ qtest qcheck_ideal_replays_legacy; qtest qcheck_contended_replay_and_fifo_bound ] );
    ]
