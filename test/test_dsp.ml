module Cbuf = Dssoc_dsp.Cbuf
module Fft = Dssoc_dsp.Fft
module Dft = Dssoc_dsp.Dft
module Radar = Dssoc_dsp.Radar
module Scrambler = Dssoc_dsp.Scrambler
module Conv_code = Dssoc_dsp.Conv_code
module Viterbi = Dssoc_dsp.Viterbi
module Interleaver = Dssoc_dsp.Interleaver
module Modulation = Dssoc_dsp.Modulation
module Crc = Dssoc_dsp.Crc
module Window = Dssoc_dsp.Window
module Prng = Dssoc_util.Prng

let qtest = QCheck_alcotest.to_alcotest

let random_cbuf seed n =
  let g = Prng.create ~seed:(Int64.of_int seed) in
  let buf = Cbuf.create n in
  for i = 0 to n - 1 do
    Cbuf.set buf i (Prng.float g 2.0 -. 1.0) (Prng.float g 2.0 -. 1.0)
  done;
  buf

let arb_signal =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_range 0 10_000) (int_range 1 256))

let arb_pow2_signal =
  QCheck.make
    ~print:(fun (seed, logn) -> Printf.sprintf "seed=%d n=%d" seed (1 lsl logn))
    QCheck.Gen.(pair (int_range 0 10_000) (int_range 0 9))

(* ---------------------- FFT ---------------------- *)

let prop_fft_ifft_identity =
  QCheck.Test.make ~name:"ifft (fft x) = x (any size incl. non-pow2)" ~count:150 arb_signal
    (fun (seed, n) ->
      let x = random_cbuf seed n in
      Cbuf.max_abs_diff x (Fft.ifft (Fft.fft x)) < 1e-6)

let prop_fft_matches_naive_dft =
  QCheck.Test.make ~name:"fft = naive dft" ~count:80 arb_signal (fun (seed, n) ->
      let x = random_cbuf seed n in
      Cbuf.max_abs_diff (Fft.fft x) (Dft.dft x) < 1e-5)

let prop_ifft_matches_naive_idft =
  QCheck.Test.make ~name:"ifft = naive idft" ~count:80 arb_signal (fun (seed, n) ->
      let x = random_cbuf seed n in
      Cbuf.max_abs_diff (Fft.ifft x) (Dft.idft x) < 1e-5)

let prop_parseval =
  QCheck.Test.make ~name:"Parseval: energy(fft x) = n * energy x" ~count:100 arb_pow2_signal
    (fun (seed, logn) ->
      let n = 1 lsl logn in
      let x = random_cbuf seed n in
      let lhs = Cbuf.energy (Fft.fft x) and rhs = float_of_int n *. Cbuf.energy x in
      Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1.0 rhs)

let prop_fft_linear =
  QCheck.Test.make ~name:"fft (x+y) = fft x + fft y" ~count:80 arb_pow2_signal
    (fun (seed, logn) ->
      let n = 1 lsl logn in
      let x = random_cbuf seed n and y = random_cbuf (seed + 1) n in
      Cbuf.max_abs_diff (Fft.fft (Cbuf.add x y)) (Cbuf.add (Fft.fft x) (Fft.fft y)) < 1e-6)

let test_fft_impulse () =
  (* FFT of a unit impulse is flat ones. *)
  let x = Cbuf.create 16 in
  Cbuf.set x 0 1.0 0.0;
  let y = Fft.fft x in
  for i = 0 to 15 do
    let re, im = Cbuf.get y i in
    Alcotest.(check bool) "flat spectrum" true (Float.abs (re -. 1.0) < 1e-9 && Float.abs im < 1e-9)
  done

let test_fft_single_tone () =
  (* FFT of exp(2 pi i k0 t / n) concentrates on bin k0. *)
  let n = 64 and k0 = 5 in
  let x = Cbuf.create n in
  for t = 0 to n - 1 do
    let ang = 2.0 *. Float.pi *. float_of_int (k0 * t) /. float_of_int n in
    Cbuf.set x t (cos ang) (sin ang)
  done;
  let idx, mag = Radar.peak (Fft.fft x) in
  Alcotest.(check int) "tone bin" k0 idx;
  Alcotest.(check bool) "bin magnitude n" true (Float.abs (mag -. float_of_int n) < 1e-6)

let test_plan_reuse () =
  let plan = Fft.Plan.make 128 in
  Alcotest.(check int) "size" 128 (Fft.Plan.size plan);
  let x = random_cbuf 9 128 in
  let direct = Fft.fft x in
  let planned = Fft.Plan.exec plan ~inverse:false x in
  Alcotest.(check bool) "plan matches" true (Cbuf.max_abs_diff direct planned < 1e-12)

(* Equality on the raw float arrays: the plan cache must be
   bit-transparent, not merely accurate to a tolerance. *)
let cbuf_bits_equal a b =
  Cbuf.length a = Cbuf.length b
  && a.Cbuf.re = b.Cbuf.re
  && a.Cbuf.im = b.Cbuf.im

let test_plan_cache_bit_identical () =
  (* A cached plan is the same precomputed tables as a fresh one, so
     transforms through either are bit-identical — including repeat
     calls that hit the cache. *)
  List.iter
    (fun n ->
      let x = random_cbuf (1000 + n) n in
      let fresh = Fft.Plan.exec (Fft.Plan.make n) ~inverse:false x in
      let c1 = Fft.Plan.exec (Fft.Plan.cached n) ~inverse:false x in
      let c2 = Fft.Plan.exec (Fft.Plan.cached n) ~inverse:false x in
      Alcotest.(check bool) (Printf.sprintf "fresh = cached (n=%d)" n) true
        (cbuf_bits_equal fresh c1);
      Alcotest.(check bool) (Printf.sprintf "cache hit stable (n=%d)" n) true
        (cbuf_bits_equal c1 c2);
      let inv_fresh = Fft.Plan.exec (Fft.Plan.make n) ~inverse:true x in
      let inv_cached = Fft.Plan.exec (Fft.Plan.cached n) ~inverse:true x in
      Alcotest.(check bool) (Printf.sprintf "inverse fresh = cached (n=%d)" n) true
        (cbuf_bits_equal inv_fresh inv_cached))
    [ 1; 2; 8; 128; 512 ]

let test_plan_cache_same_instance () =
  Alcotest.(check bool) "cached plan reused across calls" true
    (Fft.Plan.cached 256 == Fft.Plan.cached 256)

let prop_fft_cached_equals_fresh_path =
  (* Whole-transform equivalence, covering the Bluestein path for
     non-power-of-two sizes: fft via the (warm) cache must equal a
     transform through freshly built plans bit for bit.  The fresh
     reference is fft on a pristine copy — the only plan state fft
     consults is the per-size cache, which [make]'s determinism
     renders invisible. *)
  QCheck.Test.make ~name:"fft cache-warm = fft cache-cold (bit-identical incl. Bluestein)"
    ~count:100 arb_signal
    (fun (seed, n) ->
      let x = random_cbuf seed n in
      let first = Fft.fft x (* may populate the cache *) in
      let second = Fft.fft x (* guaranteed cache hit *) in
      let third = Fft.fft (Cbuf.copy x) in
      cbuf_bits_equal first second && cbuf_bits_equal first third
      && cbuf_bits_equal (Fft.ifft first) (Fft.ifft second))

let test_plan_rejects_non_pow2 () =
  Alcotest.check_raises "non-pow2 plan"
    (Invalid_argument "Fft.Plan.make: size must be a power of two") (fun () ->
      ignore (Fft.Plan.make 100))

let test_fft_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Fft: empty buffer") (fun () ->
      ignore (Fft.fft (Cbuf.create 0)))

(* ---------------------- Radar ---------------------- *)

let test_chirp_unit_magnitude () =
  let w = Radar.lfm_chirp ~n:128 ~bandwidth:0.4e6 ~sample_rate:1e6 in
  Array.iter
    (fun m -> Alcotest.(check bool) "unit modulus" true (Float.abs (m -. 1.0) < 1e-9))
    (Cbuf.magnitude w)

let prop_xcorr_recovers_delay =
  QCheck.Test.make ~name:"correlation peak at echo delay" ~count:60
    QCheck.(pair (int_range 0 100) (int_range 0 383))
    (fun (seed, delay) ->
      let w = Radar.lfm_chirp ~n:128 ~bandwidth:0.4e6 ~sample_rate:1e6 in
      let g = Prng.create ~seed:(Int64.of_int seed) in
      let rx =
        Radar.delayed_echo (Some g) ~waveform:w ~total:512 ~delay ~attenuation:0.8
          ~noise_sigma:0.05
      in
      let corr = Radar.xcorr_freq ~reference:w ~received:rx in
      fst (Radar.peak corr) = delay)

let test_delayed_echo_bounds () =
  let w = Radar.lfm_chirp ~n:16 ~bandwidth:0.4e6 ~sample_rate:1e6 in
  Alcotest.check_raises "delay outside window"
    (Invalid_argument "Radar.delayed_echo: delay out of window") (fun () ->
      ignore (Radar.delayed_echo None ~waveform:w ~total:16 ~delay:16 ~attenuation:1.0 ~noise_sigma:0.0))

let test_doppler_velocity_signs () =
  (* Bin above n/2 is a negative (closing) velocity. *)
  let v_pos = Radar.doppler_velocity ~peak_bin:8 ~n_pulses:64 ~prf:1000.0 ~carrier_hz:1e9 in
  let v_neg = Radar.doppler_velocity ~peak_bin:56 ~n_pulses:64 ~prf:1000.0 ~carrier_hz:1e9 in
  Alcotest.(check bool) "positive bin positive velocity" true (v_pos > 0.0);
  Alcotest.(check bool) "mirrored bin negative velocity" true (v_neg < 0.0);
  Alcotest.(check (float 1e-6)) "symmetric" (-.v_pos) v_neg

let test_doppler_bins () =
  let pulses = Array.init 4 (fun p ->
      let b = Cbuf.create 8 in
      Cbuf.set b 3 (float_of_int p) 0.0;
      b)
  in
  let slow = Radar.doppler_bins pulses ~bin:3 in
  Alcotest.(check int) "one sample per pulse" 4 (Cbuf.length slow);
  for p = 0 to 3 do
    Alcotest.(check (float 1e-9)) "gathered value" (float_of_int p) (fst (Cbuf.get slow p))
  done

(* ---------------------- Scrambler / coding ---------------------- *)

let arb_bits =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_range 0 100_000) (int_range 1 256))

let make_bits seed n =
  let g = Prng.create ~seed:(Int64.of_int seed) in
  Array.init n (fun _ -> Prng.bool g)

let prop_scrambler_involution =
  QCheck.Test.make ~name:"scramble twice = identity" ~count:200
    QCheck.(pair arb_bits (int_range 0 127))
    (fun ((seed, n), lfsr_seed) ->
      let bits = make_bits seed n in
      Scrambler.descramble ~seed:lfsr_seed (Scrambler.run ~seed:lfsr_seed bits) = bits)

let prop_scrambler_whitens =
  QCheck.Test.make ~name:"scrambling changes the data" ~count:100 arb_bits (fun (seed, n) ->
      QCheck.assume (n >= 16);
      let bits = make_bits seed n in
      Scrambler.run ~seed:93 bits <> bits)

let prop_viterbi_inverts_encoder =
  QCheck.Test.make ~name:"viterbi decodes clean codewords" ~count:100 arb_bits (fun (seed, n) ->
      let bits = make_bits seed n in
      Viterbi.decode ~message_length:n (Conv_code.encode bits) = bits)

let prop_viterbi_corrects_errors =
  QCheck.Test.make ~name:"viterbi corrects 2 scattered bit flips" ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 32 128))
    (fun (seed, n) ->
      let bits = make_bits seed n in
      let coded = Conv_code.encode bits in
      (* Two flips far apart are within the free distance. *)
      let m = Array.length coded in
      coded.(m / 4) <- not coded.(m / 4);
      coded.(3 * m / 4) <- not coded.(3 * m / 4);
      Viterbi.decode ~message_length:n coded = bits)

let test_encoder_length () =
  Alcotest.(check int) "rate 1/2 with 6 tail bits" 140 (Array.length (Conv_code.encode (Array.make 64 false)));
  Alcotest.(check int) "encoded_length" 140 (Conv_code.encoded_length 64)

let test_viterbi_short_input_rejected () =
  Alcotest.check_raises "short input" (Invalid_argument "Viterbi.decode: coded input too short")
    (fun () -> ignore (Viterbi.decode ~message_length:64 (Array.make 10 false)))

let test_hamming () =
  Alcotest.(check int) "distance" 2
    (Viterbi.hamming_distance [| true; false; true |] [| false; false; false |])

(* ---------------------- Interleaver ---------------------- *)

let prop_interleaver_bijection =
  QCheck.Test.make ~name:"deinterleave inverts interleave" ~count:200
    QCheck.(triple (int_range 0 10_000) (int_range 1 8) (int_range 1 32))
    (fun (seed, rows, cols) ->
      let bits = make_bits seed (rows * cols) in
      Interleaver.deinterleave ~rows (Interleaver.interleave ~rows bits) = bits)

let prop_interleaver_permutation =
  QCheck.Test.make ~name:"permutation is a bijection" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 32))
    (fun (rows, cols) ->
      let p = Interleaver.permutation ~rows ~n:(rows * cols) in
      List.sort compare (Array.to_list p) = List.init (rows * cols) (fun i -> i))

let test_interleaver_bad_length () =
  Alcotest.check_raises "length not divisible"
    (Invalid_argument "Interleaver: length not divisible by rows") (fun () ->
      ignore (Interleaver.interleave ~rows:3 (Array.make 7 false)))

let test_interleaver_spreads_adjacent () =
  (* Adjacent input bits end up rows apart in the output. *)
  let n = 16 and rows = 4 in
  let p = Interleaver.permutation ~rows ~n in
  let pos = Array.make n 0 in
  Array.iteri (fun out_i in_i -> pos.(in_i) <- out_i) p;
  Alcotest.(check int) "bit 0 vs bit 1 separation" rows (abs (pos.(1) - pos.(0)))

(* ---------------------- Modulation ---------------------- *)

let prop_modulation_roundtrip =
  let scheme_gen = QCheck.Gen.oneofl [ Modulation.Bpsk; Modulation.Qpsk; Modulation.Qam16 ] in
  QCheck.Test.make ~name:"demodulate (modulate bits) = bits" ~count:200
    (QCheck.make
       ~print:(fun (s, (seed, n)) ->
         Printf.sprintf "%s seed=%d n=%d" (Modulation.scheme_to_string s) seed n)
       QCheck.Gen.(pair scheme_gen (pair (int_range 0 10_000) (int_range 1 64))))
    (fun (scheme, (seed, n_sym)) ->
      let bps = Modulation.bits_per_symbol scheme in
      let bits = make_bits seed (n_sym * bps) in
      Modulation.demodulate scheme (Modulation.modulate scheme bits) = bits)

let prop_modulation_unit_energy =
  let scheme_gen = QCheck.Gen.oneofl [ Modulation.Bpsk; Modulation.Qpsk; Modulation.Qam16 ] in
  QCheck.Test.make ~name:"average symbol energy ~ 1" ~count:50
    (QCheck.make
       ~print:(fun (s, seed) -> Printf.sprintf "%s seed=%d" (Modulation.scheme_to_string s) seed)
       QCheck.Gen.(pair scheme_gen (int_range 0 10_000)))
    (fun (scheme, seed) ->
      let bps = Modulation.bits_per_symbol scheme in
      let n_sym = 512 in
      let bits = make_bits seed (n_sym * bps) in
      let syms = Modulation.modulate scheme bits in
      let e = Cbuf.energy syms /. float_of_int n_sym in
      Float.abs (e -. 1.0) < 0.2)

let test_modulation_bad_length () =
  Alcotest.check_raises "bits not divisible"
    (Invalid_argument "Modulation.modulate: bit count not divisible") (fun () ->
      ignore (Modulation.modulate Modulation.Qpsk (Array.make 3 false)))

let test_scheme_strings () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "roundtrip" true
        (Modulation.scheme_of_string (Modulation.scheme_to_string s) = Ok s))
    [ Modulation.Bpsk; Modulation.Qpsk; Modulation.Qam16 ];
  Alcotest.(check bool) "unknown" true (Result.is_error (Modulation.scheme_of_string "pam5"))

(* ---------------------- CRC ---------------------- *)

let test_crc_known_value () =
  (* Standard CRC-32 check value. *)
  Alcotest.(check int32) "crc32 of '123456789'" 0xCBF43926l (Crc.of_string "123456789")

let prop_crc_detects_single_flip =
  QCheck.Test.make ~name:"crc detects any single bit flip" ~count:200
    QCheck.(triple (int_range 0 10_000) (int_range 1 128) (int_range 0 1_000_000))
    (fun (seed, n, flip_raw) ->
      let payload = make_bits seed n in
      let framed = Crc.append_bits payload in
      let flip = flip_raw mod Array.length framed in
      framed.(flip) <- not framed.(flip);
      not (Crc.check_bits framed))

let prop_crc_accepts_intact =
  QCheck.Test.make ~name:"crc accepts intact frames" ~count:200 arb_bits (fun (seed, n) ->
      Crc.check_bits (Crc.append_bits (make_bits seed n)))

let test_crc_too_short () =
  Alcotest.(check bool) "short frame rejected" false (Crc.check_bits (Array.make 8 false))

(* ---------------------- Window ---------------------- *)

let test_window_endpoints () =
  let h = Window.coefficients Window.Hann 64 in
  Alcotest.(check (float 1e-9)) "hann starts at 0" 0.0 h.(0);
  Alcotest.(check (float 1e-9)) "hann ends at 0" 0.0 h.(63);
  let r = Window.coefficients Window.Rectangular 10 in
  Array.iter (fun c -> Alcotest.(check (float 1e-12)) "rect" 1.0 c) r

let test_window_apply () =
  let x = random_cbuf 1 32 in
  let y = Window.apply Window.Hamming x in
  let w = Window.coefficients Window.Hamming 32 in
  for i = 0 to 31 do
    let xr, _ = Cbuf.get x i and yr, _ = Cbuf.get y i in
    Alcotest.(check (float 1e-9)) "pointwise product" (xr *. w.(i)) yr
  done

let test_window_strings () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "roundtrip" true
        (Window.kind_of_string (Window.kind_to_string k) = Ok k))
    [ Window.Rectangular; Window.Hamming; Window.Hann; Window.Blackman ]

(* ---------------------- Cbuf ---------------------- *)

let test_cbuf_ops () =
  let a = Cbuf.of_complex_list [ (1.0, 2.0); (3.0, -1.0) ] in
  let b = Cbuf.of_complex_list [ (0.5, 0.0); (0.0, 1.0) ] in
  let prod = Cbuf.mul_pointwise a b in
  Alcotest.(check bool) "mul idx0" true (Cbuf.get prod 0 = (0.5, 1.0));
  Alcotest.(check bool) "mul idx1" true (Cbuf.get prod 1 = (1.0, 3.0));
  let c = Cbuf.conj a in
  Alcotest.(check bool) "conj" true (Cbuf.get c 0 = (1.0, -2.0));
  Alcotest.(check (float 1e-12)) "energy" 15.0 (Cbuf.energy a);
  Alcotest.(check bool) "roundtrip" true
    (Cbuf.to_complex_list a = [ (1.0, 2.0); (3.0, -1.0) ])

let test_cbuf_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Cbuf.mul_pointwise: length mismatch")
    (fun () -> ignore (Cbuf.mul_pointwise (Cbuf.create 2) (Cbuf.create 3)))

let () =
  Alcotest.run "dsp"
    [
      ( "fft",
        [
          qtest prop_fft_ifft_identity;
          qtest prop_fft_matches_naive_dft;
          qtest prop_ifft_matches_naive_idft;
          qtest prop_parseval;
          qtest prop_fft_linear;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "single tone" `Quick test_fft_single_tone;
          Alcotest.test_case "plan reuse" `Quick test_plan_reuse;
          Alcotest.test_case "plan cache bit-identical" `Quick test_plan_cache_bit_identical;
          Alcotest.test_case "plan cache reuses instance" `Quick test_plan_cache_same_instance;
          qtest prop_fft_cached_equals_fresh_path;
          Alcotest.test_case "plan non-pow2" `Quick test_plan_rejects_non_pow2;
          Alcotest.test_case "empty rejected" `Quick test_fft_empty_rejected;
        ] );
      ( "radar",
        [
          Alcotest.test_case "chirp magnitude" `Quick test_chirp_unit_magnitude;
          qtest prop_xcorr_recovers_delay;
          Alcotest.test_case "echo bounds" `Quick test_delayed_echo_bounds;
          Alcotest.test_case "doppler velocity signs" `Quick test_doppler_velocity_signs;
          Alcotest.test_case "doppler bins" `Quick test_doppler_bins;
        ] );
      ( "coding",
        [
          qtest prop_scrambler_involution;
          qtest prop_scrambler_whitens;
          qtest prop_viterbi_inverts_encoder;
          qtest prop_viterbi_corrects_errors;
          Alcotest.test_case "encoder length" `Quick test_encoder_length;
          Alcotest.test_case "viterbi short input" `Quick test_viterbi_short_input_rejected;
          Alcotest.test_case "hamming" `Quick test_hamming;
        ] );
      ( "interleaver",
        [
          qtest prop_interleaver_bijection;
          qtest prop_interleaver_permutation;
          Alcotest.test_case "bad length" `Quick test_interleaver_bad_length;
          Alcotest.test_case "spreads adjacent" `Quick test_interleaver_spreads_adjacent;
        ] );
      ( "modulation",
        [
          qtest prop_modulation_roundtrip;
          qtest prop_modulation_unit_energy;
          Alcotest.test_case "bad length" `Quick test_modulation_bad_length;
          Alcotest.test_case "scheme strings" `Quick test_scheme_strings;
        ] );
      ( "crc",
        [
          Alcotest.test_case "known value" `Quick test_crc_known_value;
          qtest prop_crc_detects_single_flip;
          qtest prop_crc_accepts_intact;
          Alcotest.test_case "too short" `Quick test_crc_too_short;
        ] );
      ( "window",
        [
          Alcotest.test_case "endpoints" `Quick test_window_endpoints;
          Alcotest.test_case "apply" `Quick test_window_apply;
          Alcotest.test_case "strings" `Quick test_window_strings;
        ] );
      ( "cbuf",
        [
          Alcotest.test_case "ops" `Quick test_cbuf_ops;
          Alcotest.test_case "length mismatch" `Quick test_cbuf_length_mismatch;
        ] );
    ]
