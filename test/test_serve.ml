(* Emulation-as-a-service: admission control, backpressure, watchdog,
   checkpoint/restore determinism. *)

module Server = Dssoc_serve.Server
module Scheduler = Dssoc_runtime.Scheduler
module Config = Dssoc_soc.Config
module Obs = Dssoc_obs.Obs

let policy =
  match Scheduler.find "FRFS" with Ok p -> p | Error e -> failwith e

let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:1

let tenants_exn s =
  match Server.tenants_of_spec s with Ok t -> t | Error e -> failwith e

let admission_exn s =
  match Server.admission_of_spec s with Ok a -> a | Error e -> failwith e

let mk_spec ?(admission = Server.default_admission) ?(duration_ms = 2.0) ?(seed = 7L)
    tenants =
  {
    Server.sp_config = config;
    sp_policy = policy;
    sp_seed = seed;
    sp_jitter = 0.0;
    sp_duration_ms = duration_ms;
    sp_admission = admission;
    sp_tenants = tenants_exn tenants;
  }

let run_exn ?obs ?drain ?checkpoint ?restore spec =
  match Server.run ?obs ?drain ?checkpoint ?restore spec with
  | Ok oc -> oc
  | Error e -> failwith e

let tenant oc name =
  match List.find_opt (fun tr -> tr.Server.tr_name = name) oc.Server.oc_tenants with
  | Some tr -> tr
  | None -> failwith ("no tenant " ^ name)

let tmp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dssoc_serve_%d_%d_%s" (Unix.getpid ()) !n suffix)

(* ------------------------------- specs ------------------------------ *)

let test_tenant_spec_parses () =
  let ts = tenants_exn "a:apps=wifi_tx*2+range_detection:rate=1.5:prio=3:slo=4ms;b:apps=wifi_rx:rate=0.5" in
  Alcotest.(check int) "two tenants" 2 (List.length ts);
  let a = List.hd ts in
  Alcotest.(check string) "name" "a" a.Server.tn_name;
  Alcotest.(check (list (pair string int)))
    "mix" [ ("wifi_tx", 2); ("range_detection", 1) ] a.Server.tn_apps;
  Alcotest.(check int) "prio" 3 a.Server.tn_priority;
  Alcotest.(check (float 1e-9)) "slo" 4.0 a.Server.tn_slo_ms;
  let b = List.nth ts 1 in
  Alcotest.(check int) "default prio" 0 b.Server.tn_priority

let test_tenant_spec_rejects () =
  List.iter
    (fun s ->
      match Server.tenants_of_spec s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [
      "";
      "a:rate=1.0";
      "a:apps=wifi_tx";
      "a:apps=wifi_tx:rate=0";
      "a:apps=wifi_tx:rate=1:bogus=3";
      "a:apps=wifi_tx*0:rate=1";
      "a:apps=wifi_tx:rate=1;a:apps=wifi_rx:rate=1";
      "rate=1:apps=wifi_tx";
    ]

let test_admission_spec () =
  let a = admission_exn "policy=degrade:queue=4:max-ready=32:timeout=2ms" in
  Alcotest.(check string) "policy" "degrade" (Server.overload_name a.Server.ad_policy);
  Alcotest.(check int) "queue" 4 a.Server.ad_queue;
  Alcotest.(check int) "max-ready" 32 a.Server.ad_max_ready;
  Alcotest.(check int) "timeout" 2_000_000 a.Server.ad_timeout_ns;
  (match Server.admission_of_spec "" with
  | Ok a -> Alcotest.(check string) "default" "shed" (Server.overload_name a.Server.ad_policy)
  | Error e -> failwith e);
  List.iter
    (fun s ->
      match Server.admission_of_spec s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "policy=lossy"; "queue=0"; "queue=x"; "nonsense"; "timeout=abc" ]

let test_materialize_deterministic () =
  let spec = mk_spec "a:apps=wifi_tx:rate=2.0;b:apps=range_detection:rate=1.0" in
  let x = Server.materialize_debug spec and y = Server.materialize_debug spec in
  Alcotest.(check bool) "same schedule" true (x = y);
  Alcotest.(check bool) "nonempty" true (List.length x > 0);
  let sorted = List.sort compare (List.map (fun (t, ti, seq, _) -> (t, ti, seq)) x) in
  Alcotest.(check bool) "time-sorted" true
    (sorted = List.map (fun (t, ti, seq, _) -> (t, ti, seq)) x)

(* ----------------------------- basic runs --------------------------- *)

let test_underload_completes_everything () =
  let spec = mk_spec ~duration_ms:3.0 "a:apps=range_detection:rate=0.8:slo=3ms" in
  let oc = run_exn spec in
  let tr = tenant oc "a" in
  Alcotest.(check bool) "offered some" true (tr.Server.tr_offered > 0);
  Alcotest.(check int) "admitted all" tr.Server.tr_offered tr.Server.tr_admitted;
  Alcotest.(check int) "completed all" tr.Server.tr_offered tr.Server.tr_completed;
  Alcotest.(check int) "no shed" 0 tr.Server.tr_shed;
  Alcotest.(check string) "verdict" "ok" tr.Server.tr_verdict;
  Alcotest.(check bool) "digest chained" true (String.length tr.Server.tr_digest = 32);
  Array.iter
    (fun d -> Alcotest.(check string) "disposition" "completed" (Server.disposition_name d))
    oc.Server.oc_dispositions

let test_run_deterministic () =
  let spec = mk_spec ~duration_ms:3.0 "a:apps=wifi_tx:rate=1.0;b:apps=range_detection:rate=1.5" in
  let a = run_exn spec and b = run_exn spec in
  Alcotest.(check string) "reports byte-identical" (Server.render_report a)
    (Server.render_report b);
  Alcotest.(check bool) "dispositions equal" true
    (a.Server.oc_dispositions = b.Server.oc_dispositions)

(* ------------------------- overload policies ------------------------ *)

let saturating = "hog:apps=range_detection:rate=40.0:slo=1ms"

let test_shed_keeps_server_live () =
  let admission = admission_exn "policy=shed:queue=8:max-ready=24" in
  let obs = Obs.make ~metrics:(Obs.Metrics.create ()) () in
  let spec = mk_spec ~admission ~duration_ms:2.0 saturating in
  let oc = run_exn ~obs spec in
  let tr = tenant oc "hog" in
  Alcotest.(check bool) "shed some" true (tr.Server.tr_shed > 0);
  Alcotest.(check int) "admitted work all completed" tr.Server.tr_admitted
    tr.Server.tr_completed;
  Alcotest.(check int) "offered = completed + shed"
    tr.Server.tr_offered
    (tr.Server.tr_completed + tr.Server.tr_shed);
  Alcotest.(check string) "verdict" "shed" tr.Server.tr_verdict;
  (* every rejected instance carries the typed disposition *)
  let shed_count =
    Array.fold_left
      (fun acc d -> if d = Server.Rejected then acc + 1 else acc)
      0 oc.Server.oc_dispositions
  in
  Alcotest.(check int) "typed Rejected dispositions" tr.Server.tr_shed shed_count;
  (* backpressure bounds the ready list: max_ready plus one instance's
     entry burst *)
  let m = Option.get (Obs.metrics obs) in
  let g = Option.get (Obs.Metrics.find_gauge m "ready_queue_depth") in
  Alcotest.(check bool) "ready depth bounded" true (Obs.Metrics.gauge_max g <= 24 + 6)

let test_block_sheds_nothing () =
  let admission = admission_exn "policy=block:queue=4:max-ready=16" in
  let spec = mk_spec ~admission ~duration_ms:1.0 saturating in
  let oc = run_exn spec in
  let tr = tenant oc "hog" in
  Alcotest.(check int) "no shed" 0 tr.Server.tr_shed;
  Alcotest.(check int) "everything offered completes" tr.Server.tr_offered
    tr.Server.tr_completed;
  Alcotest.(check string) "verdict" "ok" tr.Server.tr_verdict

let test_degrade_protects_high_priority () =
  let admission = admission_exn "policy=degrade:queue=6:max-ready=12" in
  let spec =
    mk_spec ~admission ~duration_ms:2.0
      "gold:apps=range_detection:rate=8.0:prio=2:slo=2ms;best_effort:apps=range_detection:rate=30.0:prio=0:slo=2ms"
  in
  let oc = run_exn spec in
  let gold = tenant oc "gold" and be = tenant oc "best_effort" in
  Alcotest.(check bool) "low priority absorbs shedding" true (be.Server.tr_shed > 0);
  Alcotest.(check int) "high priority never shed" 0 gold.Server.tr_shed;
  Alcotest.(check int) "gold completes everything" gold.Server.tr_offered
    gold.Server.tr_completed;
  (* the SLO shield: gold's p95 stays under its bound while best-effort
     runs saturated *)
  Alcotest.(check bool) "gold keeps its SLO" true
    (gold.Server.tr_p95_ms <= gold.Server.tr_slo_ms);
  Alcotest.(check bool) "report is ordered by priority" true
    (List.map (fun tr -> tr.Server.tr_name) oc.Server.oc_tenants
    = [ "gold"; "best_effort" ])

let test_watchdog_times_out () =
  let admission = admission_exn "policy=block:queue=64:max-ready=8:timeout=300us" in
  let spec = mk_spec ~admission ~duration_ms:1.0 saturating in
  let oc = run_exn spec in
  let tr = tenant oc "hog" in
  Alcotest.(check bool) "timed out some" true (tr.Server.tr_timed_out > 0);
  Alcotest.(check int) "admitted = completed + timed out" tr.Server.tr_admitted
    (tr.Server.tr_completed + tr.Server.tr_timed_out);
  let typed =
    Array.fold_left
      (fun acc d -> if d = Server.Timed_out then acc + 1 else acc)
      0 oc.Server.oc_dispositions
  in
  Alcotest.(check int) "typed Timed_out dispositions" tr.Server.tr_timed_out typed

(* ------------------------- checkpoint/restore ----------------------- *)

let cmp_outcomes ~what (a : Server.outcome) (b : Server.outcome) =
  Alcotest.(check string) (what ^ ": report") (Server.render_report a)
    (Server.render_report b);
  Alcotest.(check int) (what ^ ": clock") a.Server.oc_clock_ns b.Server.oc_clock_ns;
  Alcotest.(check bool) (what ^ ": dispositions") true
    (a.Server.oc_dispositions = b.Server.oc_dispositions);
  List.iter2
    (fun x y ->
      Alcotest.(check string) (what ^ ": digest " ^ x.Server.tr_name) x.Server.tr_digest
        y.Server.tr_digest)
    a.Server.oc_tenants b.Server.oc_tenants

let restore_matches_uninterrupted ~drain_ns spec =
  let reference = run_exn spec in
  let path = tmp_name "ckpt.json" in
  let oc1 =
    run_exn ~drain:(fun ~now_ns -> now_ns >= drain_ns) ~checkpoint:path spec
  in
  let final =
    if oc1.Server.oc_drained then begin
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
      run_exn ~restore:path spec
    end
    else oc1 (* drain point beyond the natural end: nothing to restore *)
  in
  cmp_outcomes ~what:(Printf.sprintf "drain@%d" drain_ns) reference final;
  if Sys.file_exists path then Sys.remove path

let test_checkpoint_restore_exact () =
  let spec =
    mk_spec ~duration_ms:3.0 "a:apps=wifi_tx:rate=1.2:slo=3ms;b:apps=range_detection:rate=2.0:slo=2ms"
  in
  restore_matches_uninterrupted ~drain_ns:1_000_000 spec

let test_checkpoint_restore_under_shedding () =
  let admission = admission_exn "policy=shed:queue=6:max-ready=16" in
  let spec = mk_spec ~admission ~duration_ms:2.0 "hog:apps=range_detection:rate=20.0:slo=1ms" in
  restore_matches_uninterrupted ~drain_ns:700_000 spec

let test_restore_rejects_wrong_spec () =
  let spec = mk_spec ~duration_ms:3.0 "a:apps=wifi_tx:rate=1.2" in
  let path = tmp_name "ckpt.json" in
  let oc = run_exn ~drain:(fun ~now_ns -> now_ns >= 500_000) ~checkpoint:path spec in
  Alcotest.(check bool) "drained" true oc.Server.oc_drained;
  let other = mk_spec ~duration_ms:3.0 ~seed:8L "a:apps=wifi_tx:rate=1.2" in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (match Server.run ~restore:path other with
  | Error e ->
    Alcotest.(check bool) "mentions fingerprint" true (contains ~needle:"fingerprint" e)
  | Ok _ -> Alcotest.fail "restore against a different spec must fail");
  Sys.remove path

let test_restore_qcheck =
  QCheck.Test.make ~count:8 ~name:"run = drain;checkpoint;restore at any point"
    QCheck.(int_range 1 28)
    (fun tenth_ms ->
      let spec =
        mk_spec ~duration_ms:3.0
          "a:apps=wifi_tx:rate=1.0:prio=1:slo=3ms;b:apps=range_detection:rate=3.0:slo=2ms"
          ~admission:(admission_exn "policy=shed:queue=8:max-ready=24")
      in
      restore_matches_uninterrupted ~drain_ns:(tenth_ms * 100_000) spec;
      true)

(* ----------------------------- obs events --------------------------- *)

let test_serve_events_recorded () =
  let obs = Obs.make ~sink:(Obs.Sink.ring ()) ~metrics:(Obs.Metrics.create ()) () in
  let admission = admission_exn "policy=shed:queue=4:max-ready=12:timeout=600us" in
  let spec = mk_spec ~admission ~duration_ms:1.0 saturating in
  let _ = run_exn ~obs spec in
  let names =
    List.map
      (fun e ->
        match e.Obs.body with
        | Obs.Tenant_admitted _ -> "admitted"
        | Obs.Tenant_shed _ -> "shed"
        | Obs.Instance_timed_out _ -> "timeout"
        | _ -> "other")
      (Obs.recorded_events obs)
  in
  Alcotest.(check bool) "admissions seen" true (List.mem "admitted" names);
  Alcotest.(check bool) "sheds seen" true (List.mem "shed" names)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "spec",
        [
          Alcotest.test_case "tenant grammar" `Quick test_tenant_spec_parses;
          Alcotest.test_case "tenant rejects" `Quick test_tenant_spec_rejects;
          Alcotest.test_case "admission grammar" `Quick test_admission_spec;
          Alcotest.test_case "deterministic schedule" `Quick test_materialize_deterministic;
        ] );
      ( "runs",
        [
          Alcotest.test_case "underload completes" `Quick test_underload_completes_everything;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
        ] );
      ( "overload",
        [
          Alcotest.test_case "shed stays live" `Quick test_shed_keeps_server_live;
          Alcotest.test_case "block sheds nothing" `Quick test_block_sheds_nothing;
          Alcotest.test_case "degrade protects priority" `Quick test_degrade_protects_high_priority;
          Alcotest.test_case "watchdog" `Quick test_watchdog_times_out;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "restore is exact" `Quick test_checkpoint_restore_exact;
          Alcotest.test_case "restore under shedding" `Quick test_checkpoint_restore_under_shedding;
          Alcotest.test_case "wrong spec rejected" `Quick test_restore_rejects_wrong_spec;
          q test_restore_qcheck;
        ] );
      ("observability", [ Alcotest.test_case "serve events" `Quick test_serve_events_recorded ]);
    ]
