module Prng = Dssoc_util.Prng
module Heap = Dssoc_util.Heap
module Vec = Dssoc_util.Vec
module Time_ns = Dssoc_util.Time_ns

let qtest = QCheck_alcotest.to_alcotest

let test_prng_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  let differ = ref false in
  for _ = 1 to 16 do
    if Prng.bits64 a <> Prng.bits64 b then differ := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differ

let test_prng_copy_independent () =
  let a = Prng.create ~seed:7L in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split () =
  let a = Prng.create ~seed:7L in
  let child = Prng.split a in
  Alcotest.(check bool) "split streams differ" true (Prng.bits64 a <> Prng.bits64 child)

let test_prng_int_zero_bound () =
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int (Prng.create ~seed:1L) 0))

let prop_int_in_range =
  QCheck.Test.make ~name:"Prng.int in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed:(Int64.of_int seed) in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 100))
    (fun (seed, lo, span) ->
      let g = Prng.create ~seed:(Int64.of_int seed) in
      let v = Prng.int_in g lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_float_range =
  QCheck.Test.make ~name:"Prng.float in [0,bound)" ~count:500 QCheck.small_int (fun seed ->
      let g = Prng.create ~seed:(Int64.of_int seed) in
      let v = Prng.float g 3.5 in
      v >= 0.0 && v < 3.5)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Prng.shuffle (Prng.create ~seed:(Int64.of_int seed)) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_gaussian_moments () =
  let g = Prng.create ~seed:3L in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian g ~mu:5.0 ~sigma:2.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.0) < 0.1);
  Alcotest.(check bool) "variance near 4" true (Float.abs (var -. 4.0) < 0.3)

let test_exponential_mean () =
  let g = Prng.create ~seed:4L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential g ~mean:3.0
  done;
  Alcotest.(check bool) "mean near 3" true (Float.abs ((!sum /. float_of_int n) -. 3.0) < 0.15)

let test_bernoulli_rate () =
  let g = Prng.create ~seed:5L in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.03)

let test_choose () =
  let g = Prng.create ~seed:6L in
  let v = Prng.choose g [| 9 |] in
  Alcotest.(check int) "singleton choice" 9 v;
  Alcotest.check_raises "empty choice" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose g [||]))

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 1; 3; 4; 5 ] (Heap.drain h);
  Alcotest.(check bool) "drained empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (0, "x"); (1, "b"); (1, "c") ];
  Alcotest.(check (list string)) "fifo among equals" [ "x"; "a"; "b"; "c" ]
    (List.map snd (Heap.drain h))

let test_heap_pop_exn () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drain = sorted input" ~count:300 QCheck.(list int) (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      Heap.drain h = List.sort compare l)

let test_heap_pop_releases_values () =
  (* Popping must not keep values reachable through the backing array
     (the event loop pops continuously; retained closures would pin
     every completed event's captured state).  Two historical leaks:
     popping the last element left it in slot 0, and the swap in [pop]
     left a stale duplicate of the moved entry in the vacated tail
     slot. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  let probe = Weak.create 2 in
  Heap.push h (1, ref 42);
  Heap.push h (2, ref 43);
  (match Heap.pop h with
  | Some (_, r) -> Weak.set probe 0 (Some r)
  | None -> Alcotest.fail "pop returned None");
  (* Second pop empties the heap: the entry that was swapped into the
     root (and its stale tail copy) must both be cleared. *)
  (match Heap.pop h with
  | Some (k, r) ->
    Alcotest.(check int) "fifo order intact" 2 k;
    Weak.set probe 1 (Some r)
  | None -> Alcotest.fail "pop returned None");
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "first value collected" false (Weak.check probe 0);
  Alcotest.(check bool) "last value collected" false (Weak.check probe 1);
  Alcotest.(check bool) "heap still usable" true (Heap.is_empty h);
  Heap.push h (9, ref 0);
  Alcotest.(check int) "push after clearing works" 9 (fst (Heap.pop_exn h))

let prop_heap_structural_invariants =
  (* [Heap.invariants_ok] is the checkable form of the structural
     contract behind [length]/[is_empty] (which the observability
     gauge sampler reads mid-run): after every push/pop the backing
     array is heap-ordered, tie-break sequence numbers are unique,
     vacated slots are cleared, and [length] tracks the live count. *)
  QCheck.Test.make ~name:"structural invariants under interleaved ops" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let live = ref 0 in
      List.for_all
        (fun (is_pop, v) ->
          if is_pop then (match Heap.pop h with Some _ -> decr live | None -> ())
          else begin
            Heap.push h v;
            incr live
          end;
          Heap.invariants_ok h
          && Heap.length h = !live
          && Heap.is_empty h = (!live = 0))
        ops)

let prop_heap_invariant_after_ops =
  QCheck.Test.make ~name:"heap invariant under interleaved ops" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      List.iter
        (fun (is_pop, v) -> if is_pop then ignore (Heap.pop h) else Heap.push h v)
        ops;
      let rest = Heap.drain h in
      rest = List.sort compare rest)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do Vec.push v i done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  Alcotest.(check int) "after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 2))

let test_vec_filter_sort () =
  let v = Vec.of_list [ 5; 2; 8; 2; 1 ] in
  Vec.filter_in_place (fun x -> x <> 2) v;
  Alcotest.(check (list int)) "filtered" [ 5; 8; 1 ] (Vec.to_list v);
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 5; 8 ] (Vec.to_list v)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"Vec of_list/to_list roundtrip" ~count:200 QCheck.(list int) (fun l ->
      Vec.to_list (Vec.of_list l) = l)

let test_time_conversions () =
  Alcotest.(check int) "us" 1_500 (Time_ns.of_us 1.5);
  Alcotest.(check int) "ms" 2_500_000 (Time_ns.of_ms 2.5);
  Alcotest.(check int) "sec" 1_000_000_000 (Time_ns.of_sec 1.0);
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Time_ns.to_ms 2_500_000);
  Alcotest.(check int) "sub clamps" 0 (Time_ns.sub 5 10)

let test_time_pp () =
  Alcotest.(check string) "ns" "123ns" (Time_ns.to_string 123);
  Alcotest.(check string) "us" "12.30us" (Time_ns.to_string 12_300);
  Alcotest.(check string) "ms" "1.500ms" (Time_ns.to_string 1_500_000)

let test_mclock_monotonic () =
  let t0 = Dssoc_util.Mclock.now_ns () in
  Alcotest.(check bool) "positive" true (t0 > 0);
  let prev = ref t0 in
  for _ = 1 to 1000 do
    let t = Dssoc_util.Mclock.now_ns () in
    Alcotest.(check bool) "never goes backwards" true (t >= !prev);
    prev := t
  done;
  (* A real sleep must be visible at nanosecond resolution. *)
  let a = Dssoc_util.Mclock.now_ns () in
  Unix.sleepf 0.001;
  let b = Dssoc_util.Mclock.now_ns () in
  Alcotest.(check bool) "1ms sleep measured >= 0.5ms" true (b - a >= 500_000)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "int zero bound" `Quick test_prng_int_zero_bound;
          Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
          Alcotest.test_case "choose" `Quick test_choose;
          qtest prop_int_in_range;
          qtest prop_int_in_bounds;
          qtest prop_float_range;
          qtest prop_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
          Alcotest.test_case "pop releases values" `Quick test_heap_pop_releases_values;
          qtest prop_heap_sorts;
          qtest prop_heap_invariant_after_ops;
          qtest prop_heap_structural_invariants;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "filter/sort" `Quick test_vec_filter_sort;
          qtest prop_vec_roundtrip;
        ] );
      ( "time",
        [
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
          Alcotest.test_case "monotonic clock" `Quick test_mclock_monotonic;
        ] );
    ]
