(* Regenerates the golden strings embedded in test/test_observability.ml
   (records_csv, chrome_trace and the JSONL event log of the fixed
   seeded run).  Run [dune exec goldengen/gen.exe] after a deliberate
   change to the execution model or the exporters, and update the test
   literals. *)

module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Config = Dssoc_soc.Config
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module Obs = Dssoc_obs.Obs

let () =
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation [ (Reference_apps.wifi_tx (), 1) ] in
  let run ?obs () =
    Emulator.run_exn ?obs
      ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L)
      ~config ~workload ()
  in
  let r = run () in
  print_string "===CSV===\n";
  print_string (Stats.records_csv r);
  print_string "===TRACE===\n";
  print_string (Dssoc_json.Json.to_string (Stats.chrome_trace r));
  print_newline ();
  let obs = Obs.make ~sink:(Obs.Sink.ring ()) ~metrics:(Obs.Metrics.create ()) () in
  ignore (run ~obs ());
  print_string "===EVENTS===\n";
  print_string (Obs.to_jsonl (Obs.recorded_events obs));
  (* The compiled engine replays the virtual run byte-for-byte, so
     this section must always equal ===CSV=== above; the golden test
     in test_observability.ml pins both against the same literal. *)
  let c =
    Emulator.run_exn
      ~engine:(Emulator.compiled_seeded ~jitter:0.0 1L)
      ~config ~workload ()
  in
  print_string "===COMPILED-CSV===\n";
  print_string (Stats.records_csv c)
